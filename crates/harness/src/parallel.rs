//! A small work-stealing-free parallel map built on crossbeam scoped threads.
//!
//! Experiment trials are embarrassingly parallel and cheap to describe (an
//! index plus a seed), so a shared atomic cursor over the index range is all
//! the scheduling needed. Results are written into their own slot, so the
//! output order — and therefore every aggregate computed from it — is
//! independent of the number of worker threads.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `f` over `0..n` in parallel and returns the results in index order.
///
/// `f` must be `Sync` (it is shared by the workers); each invocation receives
/// its index. The number of worker threads defaults to the available
/// parallelism, capped by `n`.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_with_threads(n, default_threads(), f)
}

/// Like [`par_map`] but with an explicit worker count (useful in tests to
/// check determinism across thread counts).
pub fn par_map_with_threads<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return (0..n).map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let value = f(idx);
                *slots[idx].lock() = Some(value);
            });
        }
    })
    .expect("worker threads must not panic");
    slots.into_iter().map(|slot| slot.into_inner().expect("every index was processed")).collect()
}

/// Number of worker threads used by default.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
}

/// Derives a per-trial seed from an experiment-level seed; trials get
/// well-separated, deterministic seeds regardless of scheduling.
pub fn trial_seed(base: u64, trial: usize) -> u64 {
    // SplitMix64 step — cheap, well-distributed, reproducible.
    let mut z = base.wrapping_add((trial as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_index_order() {
        let out = par_map(100, |i| i * i);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let f = |i: usize| trial_seed(42, i) % 1000;
        let one: Vec<u64> = par_map_with_threads(64, 1, f);
        let four: Vec<u64> = par_map_with_threads(64, 4, f);
        let many: Vec<u64> = par_map_with_threads(64, 16, f);
        assert_eq!(one, four);
        assert_eq!(one, many);
    }

    #[test]
    fn handles_more_threads_than_items() {
        let out = par_map_with_threads(3, 64, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn trial_seeds_are_distinct() {
        let seeds: std::collections::HashSet<u64> = (0..1000).map(|t| trial_seed(7, t)).collect();
        assert_eq!(seeds.len(), 1000);
        // And differ across base seeds too.
        assert_ne!(trial_seed(1, 0), trial_seed(2, 0));
    }
}
