//! Deterministic parallel map over independent trials.
//!
//! The implementation lives in the [`rp_parallel`] crate so that the solver
//! layer (`rp-core`'s frontier-parallel sweeps) and this experiment harness
//! share one panic-safe worker pool; this module re-exports it under the
//! harness's historical path.
//!
//! A panicking trial no longer disappears behind a generic
//! `"worker threads must not panic"` message: the pool stops dispatching new
//! trial indices once a panic is observed and re-raises the first worker's
//! original payload on the calling thread.

pub use rp_parallel::{default_threads, par_map, par_map_take, par_map_with_threads, trial_seed};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_pool_is_deterministic() {
        let reference: Vec<u64> = (0..64).map(|i| trial_seed(7, i)).collect();
        for threads in [1, 4, 16] {
            let out = par_map_with_threads(64, threads, |i| trial_seed(7, i));
            assert_eq!(out, reference, "threads = {threads}");
        }
        assert!(default_threads() >= 1);
    }

    #[test]
    fn reexported_pool_propagates_panic_payloads() {
        let result = std::panic::catch_unwind(|| {
            par_map_with_threads(8, 4, |i| {
                if i == 5 {
                    panic!("trial 5 exploded");
                }
                i
            })
        });
        let payload = result.expect_err("the map must panic");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .expect("string payload");
        assert!(message.contains("trial 5 exploded"), "payload lost: {message:?}");
    }
}
