//! E3 and E4: optimality of `multiple-bin` (Theorem 6) and the observed
//! approximation quality of the Single-policy algorithms (Theorems 3 & 4,
//! Corollary 1) on random instances.

use crate::parallel::{par_map, trial_seed};
use crate::report::{fmt_f, Table};
use crate::stats::Summary;
use crate::Effort;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rp_core::{bounds, multiple_bin, single_gen, single_nod};
use rp_instances::random::{random_binary_tree, random_kary_tree, wrap_instance};
use rp_instances::{EdgeDist, RequestDist};
use rp_tree::{validate, Instance, Policy};

const BASE_SEED: u64 = 0x5EED_0003;

/// E3 / Theorem 6: `multiple-bin` versus the exact optimum on random binary
/// trees, with and without distance constraints.
///
/// The paper proves optimality when every client satisfies `r_i ≤ W`. The
/// reproduction confirms it with and without distance constraints: the
/// measured gap must be 0 in every row (an earlier revision of the sweep
/// placed replicas as soon as pending volume exceeded `W` and lost
/// optimality on distance-constrained boundary instances; the current
/// lazy, stage-re-routing implementation matches the optimum everywhere —
/// see the note attached to the table).
pub fn e3_multiple_bin_optimality(effort: Effort) -> Table {
    let trials = effort.pick(8, 60);
    let clients_options: Vec<usize> = effort.pick(vec![6, 8], vec![8, 10, 12]);
    let configs: Vec<(usize, Option<f64>)> =
        clients_options.iter().flat_map(|&c| [(c, None), (c, Some(0.7))]).collect();

    let mut table = Table::new(
        "E3 (Theorem 6) — multiple-bin vs exact optimum on random binary trees",
        &["clients", "dmax", "trials", "optimal matches", "mean gap", "max gap"],
    );
    for (clients, dmax_fraction) in configs {
        let results = par_map(trials, |t| {
            let seed = trial_seed(BASE_SEED, t + clients * 1000);
            let mut rng = StdRng::seed_from_u64(seed);
            let tree = random_binary_tree(
                clients,
                &EdgeDist::Uniform { lo: 1, hi: 3 },
                &RequestDist::Uniform { lo: 1, hi: 9 },
                &mut rng,
            );
            let inst = wrap_instance(tree, 2.0, dmax_fraction);
            let sol = multiple_bin(&inst).expect("binary, r_i ≤ W");
            let stats = validate(&inst, Policy::Multiple, &sol).expect("must be feasible");
            let opt = rp_exact::optimal_replica_count(&inst, Policy::Multiple)
                .expect("feasible since r_i ≤ W");
            let algo = stats.replica_count as u64;
            assert!(algo >= opt, "an algorithm cannot beat the exact optimum");
            (algo - opt) as f64
        });
        let gaps = Summary::of(&results);
        let matches = results.iter().filter(|g| **g == 0.0).count();
        table.push_row(vec![
            clients.to_string(),
            dmax_fraction.map_or("none".to_string(), |f| format!("{:.0}% of depth", f * 100.0)),
            trials.to_string(),
            format!("{matches}/{trials}"),
            fmt_f(gaps.mean, 3),
            fmt_f(gaps.max, 0),
        ]);
    }
    table.push_note(
        "Paper expectation: gap 0 everywhere (Theorem 6). Reproduction finding: gap 0 on every \
         instance, with and without distance constraints. Two ingredients proved necessary: \
         replicas must only be placed when requests are distance-stuck (placing as soon as \
         pending volume exceeds W burns a server the optimum defers), and each placement stage \
         must be allowed to re-route the assignments already made inside its subtree (replica \
         positions are fixed, loads are not). The differential suite cross-checks this against \
         rp-exact on tens of thousands of instances.",
    );
    table
}

fn ratio_against_reference(inst: &Instance, algo: u64, exact_cap: usize) -> (f64, &'static str) {
    if inst.tree().len() <= exact_cap {
        let opt = rp_exact::optimal_replica_count(inst, Policy::Single)
            .expect("instances are feasible by construction");
        (algo as f64 / opt.max(1) as f64, "exact")
    } else {
        let lb = bounds::combined_lower_bound(inst).max(1);
        (algo as f64 / lb as f64, "lower bound")
    }
}

/// E4 / Theorems 3 & 4, Corollary 1: observed approximation ratios of
/// `single-gen` and `single-nod` on random trees of arity 2–4, with and
/// without distance constraints, against the exact optimum (small instances)
/// or the combined lower bound (larger ones).
pub fn e4_random_ratio(effort: Effort) -> Table {
    let trials = effort.pick(6, 40);
    let clients = effort.pick(7, 40);
    let exact_cap = effort.pick(15, 15);
    let arities: Vec<usize> = effort.pick(vec![2, 3], vec![2, 3, 4]);

    let mut table = Table::new(
        "E4 (Theorems 3/4, Corollary 1) — observed approximation ratios on random trees",
        &["Δ", "dmax", "algorithm", "mean ratio", "max ratio", "proven bound", "reference"],
    );
    for &arity in &arities {
        for dmax_fraction in [None, Some(0.7)] {
            let per_trial = par_map(trials, |t| {
                let seed = trial_seed(BASE_SEED ^ 0xE4, t + arity * 7919);
                let mut rng = StdRng::seed_from_u64(seed);
                let tree = random_kary_tree(
                    clients,
                    arity,
                    &EdgeDist::Uniform { lo: 1, hi: 3 },
                    &RequestDist::Uniform { lo: 1, hi: 9 },
                    &mut rng,
                );
                let delta = tree.arity();
                let inst = wrap_instance(tree, 2.0, dmax_fraction);
                let gen_count = {
                    let sol = single_gen(&inst).expect("feasible");
                    validate(&inst, Policy::Single, &sol).expect("feasible").replica_count as u64
                };
                // single-nod is only defined without distance constraints.
                let nod_count = if dmax_fraction.is_none() {
                    let sol = single_nod(&inst).expect("feasible");
                    Some(
                        validate(&inst, Policy::Single, &sol).expect("feasible").replica_count
                            as u64,
                    )
                } else {
                    None
                };
                let (gen_ratio, reference) = ratio_against_reference(&inst, gen_count, exact_cap);
                let nod_ratio = nod_count.map(|c| ratio_against_reference(&inst, c, exact_cap).0);
                (delta, gen_ratio, nod_ratio, reference)
            });
            let reference = per_trial.first().map(|r| r.3).unwrap_or("exact");
            let delta_max = per_trial.iter().map(|r| r.0).max().unwrap_or(arity);
            let gen_ratios: Vec<f64> = per_trial.iter().map(|r| r.1).collect();
            let gen = Summary::of(&gen_ratios);
            let dmax_label =
                dmax_fraction.map_or("none".to_string(), |f| format!("{:.0}% of depth", f * 100.0));
            let gen_bound = if dmax_fraction.is_none() { delta_max } else { delta_max + 1 };
            table.push_row(vec![
                arity.to_string(),
                dmax_label.clone(),
                "single-gen".to_string(),
                fmt_f(gen.mean, 3),
                fmt_f(gen.max, 3),
                gen_bound.to_string(),
                reference.to_string(),
            ]);
            if dmax_fraction.is_none() {
                let nod_ratios: Vec<f64> = per_trial.iter().filter_map(|r| r.2).collect();
                let nod = Summary::of(&nod_ratios);
                table.push_row(vec![
                    arity.to_string(),
                    dmax_label,
                    "single-nod".to_string(),
                    fmt_f(nod.mean, 3),
                    fmt_f(nod.max, 3),
                    "2".to_string(),
                    reference.to_string(),
                ]);
            }
        }
    }
    table.push_note(
        "Paper expectation: single-gen stays within Δ+1 (Δ without distance constraints, \
         Corollary 1) and single-nod within 2 of the optimum; on random instances both are far \
         below their worst-case bounds.",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_gaps_are_small_and_nod_case_is_exact() {
        let table = e3_multiple_bin_optimality(Effort::Quick);
        assert!(!table.is_empty());
        for row in &table.rows {
            let max_gap: f64 = row[5].parse().unwrap();
            assert!(max_gap <= 1.0, "gap must never exceed one replica on these sizes");
            if row[1] == "none" {
                assert_eq!(row[4], "0.000", "NoD instances must match the optimum exactly");
            }
        }
    }

    #[test]
    fn e4_ratios_respect_proven_bounds() {
        let table = e4_random_ratio(Effort::Quick);
        assert!(!table.is_empty());
        for row in &table.rows {
            let max_ratio: f64 = row[4].parse().unwrap();
            let bound: f64 = row[5].parse().unwrap();
            // Ratios vs the exact optimum must respect the proven bounds.
            if row[6] == "exact" {
                assert!(
                    max_ratio <= bound + 1e-9,
                    "{} exceeded its bound: {max_ratio} > {bound}",
                    row[2]
                );
            }
        }
    }
}
