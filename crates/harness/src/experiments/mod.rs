//! One module per group of experiments; see the crate docs for the mapping
//! from experiment ids to the paper's figures and theorems.

mod optimality;
mod policy;
mod reductions;
mod scaling;
mod tightness;

pub use optimality::{e3_multiple_bin_optimality, e4_random_ratio};
pub use policy::{e7_policy_comparison, e8_sensitivity};
pub use reductions::{e5_reductions, e9_inapproximability};
pub use scaling::e6_scaling;
pub use tightness::{e1_single_gen_tightness, e2_single_nod_tightness};
