//! E1 and E2: the tightness constructions of Fig. 3 and Fig. 4.
//!
//! These experiments regenerate the two worst-case families of the paper and
//! measure the approximation ratio actually reached by the algorithms,
//! checking it converges to the proven bounds (Δ+1 for `single-gen`, 2 for
//! `single-nod`).

use crate::parallel::par_map;
use crate::report::{fmt_f, Table};
use crate::Effort;
use rp_core::{single_gen, single_nod};
use rp_instances::worst_case::{single_gen_tight, single_nod_tight};
use rp_tree::{validate, Policy};

/// E1 / Fig. 3: ratio of `single-gen` on the family `Im(m, Δ)`.
///
/// For each arity Δ and block count m, the table reports the number of
/// replicas placed by the algorithm, the known optimum `m + 1`, the measured
/// ratio, and the asymptotic bound `Δ + 1` the ratio approaches as `m → ∞`.
/// For small instances the optimum is additionally confirmed with the exact
/// solver.
pub fn e1_single_gen_tightness(effort: Effort) -> Table {
    let deltas: Vec<usize> = effort.pick(vec![2, 3], vec![2, 3, 4, 5]);
    let ms: Vec<usize> = effort.pick(vec![1, 2, 4, 8], vec![1, 2, 4, 8, 16, 32]);
    let exact_cap = effort.pick(14, 24); // max tree size for the exact cross-check

    let mut table = Table::new(
        "E1 (Fig. 3) — tightness of the (Δ+1)-approximation of single-gen",
        &[
            "Δ",
            "m",
            "single-gen replicas",
            "optimal replicas",
            "ratio",
            "bound Δ+1",
            "optimum certified",
        ],
    );
    let cases: Vec<(usize, usize)> =
        deltas.iter().flat_map(|&d| ms.iter().map(move |&m| (d, m))).collect();
    let rows = par_map(cases.len(), |i| {
        let (delta, m) = cases[i];
        let tight = single_gen_tight(m, delta);
        let sol = single_gen(&tight.instance).expect("Im instances satisfy r_i ≤ W");
        let stats =
            validate(&tight.instance, Policy::Single, &sol).expect("single-gen must be feasible");
        let algo = stats.replica_count as u64;
        let opt = tight.optimal_replicas;
        let certified = if tight.instance.tree().len() <= exact_cap {
            let exact = rp_exact::optimal_replica_count(&tight.instance, Policy::Single)
                .expect("Im instances are feasible");
            assert_eq!(exact, opt, "the paper's optimum for Im must match the exact solver");
            "exact"
        } else {
            "analytic"
        };
        vec![
            delta.to_string(),
            m.to_string(),
            algo.to_string(),
            opt.to_string(),
            fmt_f(algo as f64 / opt as f64, 3),
            (delta + 1).to_string(),
            certified.to_string(),
        ]
    });
    for row in rows {
        table.push_row(row);
    }
    table.push_note(
        "Paper expectation: |R_algo| = m(Δ+1) and |R_opt| = m+1, so the ratio m(Δ+1)/(m+1) \
         approaches Δ+1 as m grows — the (Δ+1) factor of Theorem 3 cannot be improved.",
    );
    table
}

/// E2 / Fig. 4: ratio of `single-nod` on the Fig. 4 family.
pub fn e2_single_nod_tightness(effort: Effort) -> Table {
    let ks: Vec<usize> = effort.pick(vec![1, 2, 4, 8, 16], vec![1, 2, 4, 8, 16, 32, 64]);
    let exact_cap = effort.pick(16, 22);

    let mut table = Table::new(
        "E2 (Fig. 4) — tightness of the 2-approximation of single-nod",
        &["K", "single-nod replicas", "optimal replicas", "ratio", "bound", "optimum certified"],
    );
    let rows = par_map(ks.len(), |i| {
        let k = ks[i];
        let tight = single_nod_tight(k);
        let sol = single_nod(&tight.instance).expect("Fig. 4 instances satisfy r_i ≤ W");
        let stats =
            validate(&tight.instance, Policy::Single, &sol).expect("single-nod must be feasible");
        let algo = stats.replica_count as u64;
        let opt = tight.optimal_replicas;
        let certified = if tight.instance.tree().len() <= exact_cap {
            let exact = rp_exact::optimal_replica_count(&tight.instance, Policy::Single)
                .expect("Fig. 4 instances are feasible");
            assert_eq!(exact, opt);
            "exact"
        } else {
            "analytic"
        };
        vec![
            k.to_string(),
            algo.to_string(),
            opt.to_string(),
            fmt_f(algo as f64 / opt as f64, 3),
            "2".to_string(),
            certified.to_string(),
        ]
    });
    for row in rows {
        table.push_row(row);
    }
    table.push_note(
        "Paper expectation: |R_algo| = 2K and |R_opt| = K+1, so the ratio 2K/(K+1) approaches 2 \
         as K grows — the factor 2 of Theorem 4 cannot be improved.",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_ratios_stay_below_bound_and_increase_with_m() {
        let table = e1_single_gen_tightness(Effort::Quick);
        assert!(!table.is_empty());
        // group rows by Δ and check monotone ratios bounded by Δ+1
        for delta in [2usize, 3] {
            let ratios: Vec<f64> = table
                .rows
                .iter()
                .filter(|r| r[0] == delta.to_string())
                .map(|r| r[4].parse::<f64>().unwrap())
                .collect();
            assert!(!ratios.is_empty());
            for w in ratios.windows(2) {
                assert!(w[1] >= w[0] - 1e-9, "ratio must not decrease with m");
            }
            for r in &ratios {
                assert!(*r <= (delta + 1) as f64 + 1e-9);
            }
        }
    }

    #[test]
    fn e2_ratios_approach_two() {
        let table = e2_single_nod_tightness(Effort::Quick);
        let ratios: Vec<f64> = table.rows.iter().map(|r| r[3].parse::<f64>().unwrap()).collect();
        assert!(ratios.iter().all(|r| *r <= 2.0 + 1e-9));
        assert!(*ratios.last().unwrap() > 1.8, "ratio should approach 2 for the largest K");
    }
}
