//! E6: complexity / scaling measurements.
//!
//! The paper states the following running times: `single-gen` in `O(Δ·|T|)`,
//! `single-nod` in `O((Δ log Δ + |C|)·|T|)` and `multiple-bin` in `O(|T|²)`.
//! This experiment measures wall-clock time on growing random trees and
//! reports the time normalised by the predicted asymptotic term, which should
//! stay roughly constant when the bound is the right order of magnitude.
//! (Criterion benches in `crates/bench` provide the statistically rigorous
//! timing; this table is the quick, human-readable view.)

use crate::parallel::trial_seed;
use crate::report::{fmt_f, Table};
use crate::Effort;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rp_core::{baselines, multiple_bin_with, single_gen_with, single_nod_with, SolverScratch};
use rp_instances::random::{random_binary_tree, random_kary_tree, wrap_instance};
use rp_instances::{EdgeDist, RequestDist};
use rp_tree::Instance;
use std::time::Instant;

const BASE_SEED: u64 = 0x5EED_0006;

fn time_ms<F: FnMut()>(mut f: F, repeats: u32) -> f64 {
    let start = Instant::now();
    for _ in 0..repeats {
        f();
    }
    start.elapsed().as_secs_f64() * 1000.0 / repeats as f64
}

fn binary_instance(clients: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let tree = random_binary_tree(
        clients,
        &EdgeDist::Uniform { lo: 1, hi: 3 },
        &RequestDist::Uniform { lo: 1, hi: 9 },
        &mut rng,
    );
    wrap_instance(tree, 4.0, Some(0.7))
}

fn kary_instance(clients: usize, arity: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let tree = random_kary_tree(
        clients,
        arity,
        &EdgeDist::Uniform { lo: 1, hi: 3 },
        &RequestDist::Uniform { lo: 1, hi: 9 },
        &mut rng,
    );
    wrap_instance(tree, 4.0, Some(0.7))
}

/// E6: wall-clock scaling of the three algorithms (plus the greedy Multiple
/// baseline) on growing random trees.
///
/// The arena-based algorithms run through one shared [`SolverScratch`] —
/// the steady state the `rp-bench` `scaling` target also measures, where
/// per-solve allocations have been amortised away.
pub fn e6_scaling(effort: Effort) -> Table {
    let sizes: Vec<usize> = effort.pick(vec![128, 256, 512], vec![512, 2048, 8192, 32768]);
    let repeats = effort.pick(3, 10);
    let arity = 4;
    let mut scratch = SolverScratch::new();

    let mut table = Table::new(
        "E6 — running-time scaling of the algorithms",
        &["algorithm", "clients", "tree nodes", "time (ms)", "time / predicted term (µs)"],
    );

    for (i, &clients) in sizes.iter().enumerate() {
        let seed = trial_seed(BASE_SEED, i);
        // single-gen and single-nod on Δ=4 trees.
        let inst = kary_instance(clients, arity, seed);
        let n = inst.tree().len() as f64;
        let delta = inst.tree().arity() as f64;
        let c = inst.tree().client_count() as f64;

        let t_gen =
            time_ms(|| drop(single_gen_with(&inst, &mut scratch).expect("feasible")), repeats);
        table.push_row(vec![
            "single-gen".into(),
            clients.to_string(),
            inst.tree().len().to_string(),
            fmt_f(t_gen, 3),
            fmt_f(t_gen * 1000.0 / (delta * n), 4),
        ]);

        let t_nod =
            time_ms(|| drop(single_nod_with(&inst, &mut scratch).expect("feasible")), repeats);
        table.push_row(vec![
            "single-nod".into(),
            clients.to_string(),
            inst.tree().len().to_string(),
            fmt_f(t_nod, 3),
            fmt_f(t_nod * 1000.0 / ((delta * delta.log2().max(1.0) + c) * n), 4),
        ]);

        let t_greedy =
            time_ms(|| drop(baselines::multiple_greedy(&inst).expect("feasible")), repeats);
        table.push_row(vec![
            "multiple-greedy".into(),
            clients.to_string(),
            inst.tree().len().to_string(),
            fmt_f(t_greedy, 3),
            fmt_f(t_greedy * 1000.0 / (c * n), 4),
        ]);

        // multiple-bin on binary trees.
        let bin_inst = binary_instance(clients, seed ^ 0xBEEF);
        let bn = bin_inst.tree().len() as f64;
        let t_bin = time_ms(
            || drop(multiple_bin_with(&bin_inst, &mut scratch).expect("feasible")),
            repeats,
        );
        table.push_row(vec![
            "multiple-bin".into(),
            clients.to_string(),
            bin_inst.tree().len().to_string(),
            fmt_f(t_bin, 3),
            fmt_f(t_bin * 1000.0 / (bn * bn / 1000.0), 4),
        ]);
    }
    table.push_note(
        "Paper expectation: single-gen is O(Δ·|T|), single-nod is O((Δ log Δ + |C|)·|T|), \
         multiple-bin is O(|T|²) (the last column normalises the measured time by the predicted \
         term — it should stay of the same order of magnitude as |T| grows; multiple-bin's \
         normalisation uses |T|²/1000 so the numbers stay readable).",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_produces_rows_for_every_algorithm_and_size() {
        let table = e6_scaling(Effort::Quick);
        // 4 algorithms × 3 sizes.
        assert_eq!(table.len(), 12);
        for row in &table.rows {
            let ms: f64 = row[3].parse().unwrap();
            assert!(ms >= 0.0);
            let nodes: usize = row[2].parse().unwrap();
            assert!(nodes > 0);
        }
    }
}
