//! E7 and E8: Single vs Multiple policy, and sensitivity to the capacity `W`
//! and the distance bound `dmax`.
//!
//! The paper's framework section motivates the Multiple policy by the extra
//! freedom of splitting a client's requests; these experiments quantify how
//! many replicas that freedom saves on random binary trees (E7), and how both
//! policies react when the capacity and the distance budget are tightened
//! (E8).

use crate::parallel::{par_map, trial_seed};
use crate::report::{fmt_f, Table};
use crate::stats::Summary;
use crate::Effort;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rp_core::{baselines, bounds, multiple_bin, single_gen};
use rp_instances::random::{random_binary_tree, wrap_instance};
use rp_instances::{EdgeDist, RequestDist};
use rp_tree::{validate, Policy};

const BASE_SEED: u64 = 0x5EED_0007;

/// E7: replicas used by the Single and Multiple policies on random binary
/// trees as the distance constraint tightens.
pub fn e7_policy_comparison(effort: Effort) -> Table {
    let trials = effort.pick(8, 50);
    let clients = effort.pick(24, 200);
    let dmax_fractions: Vec<Option<f64>> = vec![None, Some(0.9), Some(0.7), Some(0.5), Some(0.4)];

    let mut table = Table::new(
        "E7 — Single vs Multiple policy on random binary trees",
        &[
            "dmax",
            "volume LB",
            "combined LB",
            "multiple-bin",
            "multiple-greedy",
            "single-gen",
            "clients-only",
            "multiple saves vs single",
        ],
    );
    for dmax_fraction in dmax_fractions {
        let rows = par_map(trials, |t| {
            let seed = trial_seed(BASE_SEED, t);
            let mut rng = StdRng::seed_from_u64(seed);
            let tree = random_binary_tree(
                clients,
                &EdgeDist::Uniform { lo: 1, hi: 3 },
                &RequestDist::Uniform { lo: 1, hi: 9 },
                &mut rng,
            );
            let inst = wrap_instance(tree, 3.0, dmax_fraction);
            let volume_lb = bounds::volume_lower_bound(&inst) as f64;
            let combined_lb = bounds::combined_lower_bound(&inst) as f64;
            let run = |sol: rp_tree::Solution, policy: Policy| -> f64 {
                validate(&inst, policy, &sol).expect("must be feasible").replica_count as f64
            };
            let multiple = run(multiple_bin(&inst).expect("feasible"), Policy::Multiple);
            let greedy =
                run(baselines::multiple_greedy(&inst).expect("feasible"), Policy::Multiple);
            let single = run(single_gen(&inst).expect("feasible"), Policy::Single);
            let clients_only =
                run(baselines::clients_only(&inst).expect("feasible"), Policy::Single);
            (volume_lb, combined_lb, multiple, greedy, single, clients_only)
        });
        type Row = (f64, f64, f64, f64, f64, f64);
        let col = |f: fn(&Row) -> f64| -> Summary {
            Summary::of(&rows.iter().map(f).collect::<Vec<_>>())
        };
        let volume = col(|r| r.0);
        let combined = col(|r| r.1);
        let multiple = col(|r| r.2);
        let greedy = col(|r| r.3);
        let single = col(|r| r.4);
        let clients_only = col(|r| r.5);
        let saving = if single.mean > 0.0 {
            100.0 * (single.mean - multiple.mean) / single.mean
        } else {
            0.0
        };
        table.push_row(vec![
            dmax_label(dmax_fraction),
            volume.fmt_mean(),
            combined.fmt_mean(),
            multiple.fmt_mean(),
            greedy.fmt_mean(),
            single.fmt_mean(),
            clients_only.fmt_mean(),
            format!("{saving:.1}%"),
        ]);
    }
    table.push_note(
        "Expected shape: Multiple ≤ Single ≤ clients-only everywhere; the gap between the \
         policies widens as dmax tightens, because the Single policy cannot split a client whose \
         nearby servers are almost full, while the Multiple policy tops them up exactly.",
    );
    table
}

/// E8: sensitivity of both policies to the capacity (expressed as average
/// clients per server) and to `dmax`.
pub fn e8_sensitivity(effort: Effort) -> Table {
    let trials = effort.pick(6, 40);
    let clients = effort.pick(24, 150);
    let load_factors: Vec<f64> =
        effort.pick(vec![1.5, 3.0, 6.0], vec![1.5, 2.0, 3.0, 4.0, 6.0, 8.0]);
    let dmax_fractions: Vec<Option<f64>> = vec![None, Some(0.6)];

    let mut table = Table::new(
        "E8 — sensitivity to the capacity W and to dmax",
        &[
            "clients per server (W/avg r)",
            "dmax",
            "volume LB",
            "multiple-bin",
            "single-gen",
            "utilisation (multiple)",
        ],
    );
    for &load in &load_factors {
        for &dmax_fraction in &dmax_fractions {
            let rows = par_map(trials, |t| {
                let seed = trial_seed(BASE_SEED ^ 0xE8, t);
                let mut rng = StdRng::seed_from_u64(seed);
                let tree = random_binary_tree(
                    clients,
                    &EdgeDist::Uniform { lo: 1, hi: 3 },
                    &RequestDist::Uniform { lo: 1, hi: 9 },
                    &mut rng,
                );
                let inst = wrap_instance(tree, load, dmax_fraction);
                let volume_lb = bounds::volume_lower_bound(&inst) as f64;
                let multiple_sol = multiple_bin(&inst).expect("feasible");
                let multiple_stats =
                    validate(&inst, Policy::Multiple, &multiple_sol).expect("feasible");
                let single_sol = single_gen(&inst).expect("feasible");
                let single_stats = validate(&inst, Policy::Single, &single_sol).expect("feasible");
                (
                    volume_lb,
                    multiple_stats.replica_count as f64,
                    single_stats.replica_count as f64,
                    multiple_stats.avg_utilisation,
                )
            });
            let volume = Summary::of(&rows.iter().map(|r| r.0).collect::<Vec<_>>());
            let multiple = Summary::of(&rows.iter().map(|r| r.1).collect::<Vec<_>>());
            let single = Summary::of(&rows.iter().map(|r| r.2).collect::<Vec<_>>());
            let util = Summary::of(&rows.iter().map(|r| r.3).collect::<Vec<_>>());
            table.push_row(vec![
                format!("{load:.1}"),
                dmax_label(dmax_fraction),
                volume.fmt_mean(),
                multiple.fmt_mean(),
                single.fmt_mean(),
                fmt_f(util.mean, 3),
            ]);
        }
    }
    table.push_note(
        "Expected shape: larger capacities (more clients per server) reduce the replica count \
         roughly inversely until the distance constraint, not the capacity, becomes the \
         bottleneck; at that point adding capacity no longer helps and utilisation drops.",
    );
    table
}

fn dmax_label(fraction: Option<f64>) -> String {
    fraction.map_or("none".to_string(), |f| format!("{:.0}% of depth", f * 100.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_policy_ordering_holds() {
        let table = e7_policy_comparison(Effort::Quick);
        for row in &table.rows {
            let lb: f64 = row[2].parse().unwrap();
            let multiple: f64 = row[3].parse().unwrap();
            let greedy: f64 = row[4].parse().unwrap();
            let single: f64 = row[5].parse().unwrap();
            let clients_only: f64 = row[6].parse().unwrap();
            assert!(lb <= multiple + 1e-9);
            assert!(multiple <= greedy + 1e-9, "multiple-bin must not lose to the greedy");
            assert!(multiple <= single + 1e-9, "Multiple policy must not need more than Single");
            assert!(single <= clients_only + 1e-9);
        }
    }

    #[test]
    fn e8_more_capacity_never_hurts() {
        let table = e8_sensitivity(Effort::Quick);
        // For a fixed dmax setting, the mean multiple-bin count must be
        // non-increasing in the load factor.
        for dmax in ["none", "60% of depth"] {
            let counts: Vec<f64> =
                table.rows.iter().filter(|r| r[1] == dmax).map(|r| r[3].parse().unwrap()).collect();
            assert!(!counts.is_empty());
            for w in counts.windows(2) {
                assert!(
                    w[1] <= w[0] + 1e-9,
                    "replica count must not grow with capacity: {counts:?}"
                );
            }
        }
    }
}
