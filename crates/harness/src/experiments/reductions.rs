//! E5 and E9: the NP-hardness reduction gadgets exercised end-to-end.
//!
//! * E5 builds `I2` (3-Partition → Single-NoD-Bin, Theorem 1) and `I6`
//!   (2-Partition-Equal → Multiple-Bin, Theorem 5) from small YES and NO
//!   source instances, and checks with the exact solvers that the replica
//!   threshold is reachable exactly when the source instance is a YES
//!   instance.
//! * E9 builds `I4` (2-Partition → Single-NoD-Bin, Theorem 2) from YES
//!   instances, confirms the optimum is 2, and shows that the polynomial
//!   approximation algorithms return at least 3 — the gap that makes a
//!   (3/2 − ε)-approximation impossible unless P = NP.

use crate::parallel::{par_map, trial_seed};
use crate::report::Table;
use crate::Effort;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rp_core::{single_gen, single_nod};
use rp_instances::gadgets::{
    three_partition_gadget, two_partition_equal_gadget, two_partition_gadget,
};
use rp_instances::partition::{
    solve_three_partition, solve_two_partition, solve_two_partition_equal, three_partition_yes,
    two_partition_equal_random, two_partition_equal_yes, ThreePartitionInstance,
    TwoPartitionInstance,
};
use rp_tree::{validate, Policy};

const BASE_SEED: u64 = 0x5EED_0005;

/// E5 / Theorems 1 & 5: reduction gadgets agree with the source problems.
pub fn e5_reductions(effort: Effort) -> Table {
    let yes_trials = effort.pick(2, 6);
    let mut table = Table::new(
        "E5 (Theorems 1 & 5) — NP-hardness reductions exercised end-to-end",
        &["gadget", "source instance", "source answer", "threshold", "solver answer", "agree"],
    );

    // --- I2: 3-Partition → Single-NoD-Bin ------------------------------------
    let mut i2_cases: Vec<(String, ThreePartitionInstance)> = Vec::new();
    for t in 0..yes_trials {
        let mut rng = StdRng::seed_from_u64(trial_seed(BASE_SEED, t));
        i2_cases.push((format!("random YES #{t}"), three_partition_yes(2, 8, &mut rng)));
    }
    // A hand-picked NO instance that satisfies the strict 3-Partition bounds
    // B/4 < a_i < B/2 (required for the backward direction of the reduction):
    // no triple of {6,6,6,6,7,9} sums to 20.
    i2_cases.push((
        "hand-built NO".to_string(),
        ThreePartitionInstance { items: vec![6, 6, 6, 6, 7, 9], bin: 20 },
    ));
    let i2_rows = par_map(i2_cases.len(), |i| {
        let (label, source) = &i2_cases[i];
        let source_yes = solve_three_partition(source).is_some();
        let gadget = three_partition_gadget(&source.items, source.bin);
        let solver_yes =
            rp_exact::feasible_within(&gadget.instance, Policy::Single, gadget.threshold);
        vec![
            "I2 (Fig. 1)".to_string(),
            format!("{label}: {:?}, B={}", source.items, source.bin),
            if source_yes { "YES" } else { "NO" }.to_string(),
            gadget.threshold.to_string(),
            if solver_yes { "YES" } else { "NO" }.to_string(),
            (source_yes == solver_yes).to_string(),
        ]
    });
    for row in i2_rows {
        table.push_row(row);
    }

    // --- I6: 2-Partition-Equal → Multiple-Bin --------------------------------
    // m = 3 (six items): small enough for the exact Multiple solver, large
    // enough that non-trivial YES and NO instances satisfy the gadget's
    // `a_j ≤ S/4` requirement.
    let mut i6_cases: Vec<(String, TwoPartitionInstance)> = Vec::new();
    {
        let mut rng = StdRng::seed_from_u64(trial_seed(BASE_SEED, 100));
        i6_cases.push(("random YES".to_string(), two_partition_equal_yes(3, 8, &mut rng)));
        // A hand-built NO instance: no 3-item subset of {8,8,8,10,10,10} sums
        // to 27.
        i6_cases.push((
            "hand-built NO".to_string(),
            TwoPartitionInstance { items: vec![8, 8, 8, 10, 10, 10] },
        ));
        // Random (unlabelled) instances; the brute-force checker decides.
        for t in 0..effort.pick(1, 4) {
            i6_cases.push((format!("random #{t}"), two_partition_equal_random(3, 8, &mut rng)));
        }
    }
    let i6_rows = par_map(i6_cases.len(), |i| {
        let (label, source) = &i6_cases[i];
        let source_yes = solve_two_partition_equal(source).is_some();
        let (gadget, _) = two_partition_equal_gadget(&source.items);
        let solver_yes =
            rp_exact::feasible_within(&gadget.instance, Policy::Multiple, gadget.threshold);
        vec![
            "I6 (Fig. 5)".to_string(),
            format!("{label}: {:?}", source.items),
            if source_yes { "YES" } else { "NO" }.to_string(),
            gadget.threshold.to_string(),
            if solver_yes { "YES" } else { "NO" }.to_string(),
            (source_yes == solver_yes).to_string(),
        ]
    });
    for row in i6_rows {
        table.push_row(row);
    }

    table.push_note(
        "Paper expectation: the source partition instance is a YES instance iff the gadget \
         admits a placement within the threshold (m replicas for I2, 4m for I6). Every row must \
         therefore show agree = true.",
    );
    table
}

/// E9 / Theorem 2: on YES instances of 2-Partition the gadget `I4` has an
/// optimum of 2, while the greedy approximation algorithms need at least 3 —
/// matching the (3/2 − ε) inapproximability bound.
pub fn e9_inapproximability(effort: Effort) -> Table {
    let trials = effort.pick(3, 8);
    let items_per_side = effort.pick(3, 5);
    let mut table = Table::new(
        "E9 (Theorem 2) — the I4 gadget separates the optimum from greedy algorithms",
        &[
            "source items",
            "2-partition",
            "optimal replicas",
            "single-gen replicas",
            "single-nod replicas",
            "ratio ≥ 3/2",
        ],
    );
    let rows = par_map(trials, |t| {
        let mut rng = StdRng::seed_from_u64(trial_seed(BASE_SEED ^ 0xE9, t));
        // Mirrored halves ⇒ guaranteed YES instance with an even total.
        let source = two_partition_equal_yes(items_per_side, 10, &mut rng);
        let is_yes = solve_two_partition(&source).is_some();
        let gadget = two_partition_gadget(&source.items);
        let opt = rp_exact::optimal_replica_count(&gadget.instance, Policy::Single)
            .expect("I4 gadgets from YES instances are feasible");
        let gen = {
            let sol = single_gen(&gadget.instance).expect("feasible");
            validate(&gadget.instance, Policy::Single, &sol).expect("feasible").replica_count as u64
        };
        let nod = {
            let sol = single_nod(&gadget.instance).expect("feasible");
            validate(&gadget.instance, Policy::Single, &sol).expect("feasible").replica_count as u64
        };
        let worst = gen.min(nod);
        vec![
            format!("{:?}", source.items),
            if is_yes { "YES" } else { "NO" }.to_string(),
            opt.to_string(),
            gen.to_string(),
            nod.to_string(),
            (worst as f64 / opt as f64 >= 1.5).to_string(),
        ]
    });
    for row in rows {
        table.push_row(row);
    }
    table.push_note(
        "Paper expectation: on YES instances of 2-Partition the optimum is 2 (root + n1); any \
         polynomial algorithm that always stayed strictly below 3/2 of the optimum would decide \
         2-Partition, hence no (3/2 − ε)-approximation exists unless P = NP. The greedy \
         algorithms indeed return ≥ 3 replicas on these instances.",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_every_row_agrees() {
        let table = e5_reductions(Effort::Quick);
        assert!(!table.is_empty());
        for row in &table.rows {
            assert_eq!(row[5], "true", "reduction disagreement on {row:?}");
        }
        // Both YES and NO source instances must appear among the I2 rows.
        let answers: Vec<&str> =
            table.rows.iter().filter(|r| r[0].starts_with("I2")).map(|r| r[2].as_str()).collect();
        assert!(answers.contains(&"YES") && answers.contains(&"NO"));
    }

    #[test]
    fn e9_gadget_separates_optimum_from_heuristics() {
        let table = e9_inapproximability(Effort::Quick);
        for row in &table.rows {
            if row[1] == "YES" {
                assert_eq!(row[2], "2", "YES instances must have an optimum of 2");
            }
            assert_eq!(row[5], "true");
        }
    }
}
