//! # rp-harness — parallel experiment harness
//!
//! Reproduces every figure and theorem-level claim of the paper as a
//! self-contained *experiment* that generates workloads, runs the algorithms
//! (and the exact solvers / lower bounds they are compared against), and
//! renders the result as a Markdown/CSV table. `EXPERIMENTS.md` at the
//! workspace root records the output of each experiment next to the paper's
//! expectation.
//!
//! | Experiment | Paper artefact |
//! |---|---|
//! | [`experiments::e1_single_gen_tightness`] | Fig. 3 — tightness of the Δ+1 ratio of `single-gen` |
//! | [`experiments::e2_single_nod_tightness`] | Fig. 4 — tightness of the factor-2 ratio of `single-nod` |
//! | [`experiments::e3_multiple_bin_optimality`] | Theorem 6 — optimality of `multiple-bin` |
//! | [`experiments::e4_random_ratio`] | Theorems 3 & 4, Corollary 1 — observed approximation quality |
//! | [`experiments::e5_reductions`] | Theorems 1 & 5 — NP-hardness reduction gadgets |
//! | [`experiments::e6_scaling`] | Complexity claims `O(Δ·|T|)`, `O((Δ log Δ + |C|)·|T|)`, `O(|T|²)` |
//! | [`experiments::e7_policy_comparison`] | Single vs Multiple policy |
//! | [`experiments::e8_sensitivity`] | Sensitivity to `W` and `dmax` |
//! | [`experiments::e9_inapproximability`] | Theorem 2 — (3/2 − ε) inapproximability gadget |
//!
//! Independent trials are distributed over a crossbeam worker pool
//! ([`parallel::par_map`]) with one deterministic RNG seed per trial, so the
//! results do not depend on the number of worker threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod parallel;
pub mod report;
pub mod stats;

pub use report::Table;
pub use stats::Summary;

/// Effort level of an experiment run: `Quick` keeps instance sizes and trial
/// counts small enough for CI / unit tests; `Full` matches the numbers
/// reported in `EXPERIMENTS.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Small sizes, a handful of trials (seconds).
    Quick,
    /// The sizes used to produce `EXPERIMENTS.md` (minutes).
    Full,
}

impl Effort {
    /// Scales a pair `(quick, full)` by the effort level.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Effort::Quick => quick,
            Effort::Full => full,
        }
    }
}

/// Runs every experiment at the given effort level and returns all tables in
/// experiment order. This is what `rp experiment all` and the bench harness
/// call.
pub fn run_all(effort: Effort) -> Vec<Table> {
    vec![
        experiments::e1_single_gen_tightness(effort),
        experiments::e2_single_nod_tightness(effort),
        experiments::e3_multiple_bin_optimality(effort),
        experiments::e4_random_ratio(effort),
        experiments::e5_reductions(effort),
        experiments::e6_scaling(effort),
        experiments::e7_policy_comparison(effort),
        experiments::e8_sensitivity(effort),
        experiments::e9_inapproximability(effort),
    ]
}

/// Looks up an experiment by its identifier (`e1` … `e9`, or `all`).
pub fn run_by_name(name: &str, effort: Effort) -> Option<Vec<Table>> {
    let single = |t: Table| Some(vec![t]);
    match name {
        "e1" => single(experiments::e1_single_gen_tightness(effort)),
        "e2" => single(experiments::e2_single_nod_tightness(effort)),
        "e3" => single(experiments::e3_multiple_bin_optimality(effort)),
        "e4" => single(experiments::e4_random_ratio(effort)),
        "e5" => single(experiments::e5_reductions(effort)),
        "e6" => single(experiments::e6_scaling(effort)),
        "e7" => single(experiments::e7_policy_comparison(effort)),
        "e8" => single(experiments::e8_sensitivity(effort)),
        "e9" => single(experiments::e9_inapproximability(effort)),
        "all" => Some(run_all(effort)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_pick() {
        assert_eq!(Effort::Quick.pick(1, 10), 1);
        assert_eq!(Effort::Full.pick(1, 10), 10);
    }

    #[test]
    fn unknown_experiment_name() {
        assert!(run_by_name("e42", Effort::Quick).is_none());
    }
}
