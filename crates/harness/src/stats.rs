//! Descriptive statistics over experiment trials.

/// Summary statistics of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (`n - 1` denominator; 0 for `n ≤ 1`).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median (average of the middle two for even `n`).
    pub median: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
}

impl Summary {
    /// Computes the summary of a sample; returns the all-zero summary for an
    /// empty sample.
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
                p95: 0.0,
            };
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("statistics require finite values"));
        let median =
            if n % 2 == 1 { sorted[n / 2] } else { (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0 };
        let p95_idx = (((n as f64) * 0.95).ceil() as usize).clamp(1, n) - 1;
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median,
            p95: sorted[p95_idx],
        }
    }

    /// Half-width of the 95% confidence interval around the mean under a
    /// normal approximation (1.96 σ / √n); 0 for `n ≤ 1`.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n <= 1 {
            0.0
        } else {
            1.96 * self.std_dev / (self.n as f64).sqrt()
        }
    }

    /// Renders the mean with two decimal places (convenience for tables).
    pub fn fmt_mean(&self) -> String {
        format!("{:.2}", self.mean)
    }
}

/// Mean of a sample (0 for an empty one); convenience used by experiments
/// that do not need the full summary.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::of(&[4.5]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 4.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 4.5);
        assert_eq!(s.p95, 4.5);
    }

    #[test]
    fn known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-9);
        // Sample std dev of this classic sample is ~2.138.
        assert!((s.std_dev - 2.1381).abs() < 1e-3);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-9);
        assert_eq!(s.p95, 9.0);
        assert!(s.ci95_half_width() > 0.0);
    }

    #[test]
    fn median_odd_and_percentile() {
        let s = Summary::of(&[1.0, 3.0, 2.0]);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.p95, 3.0);
        assert!((mean(&[1.0, 3.0, 2.0]) - 2.0).abs() < 1e-12);
    }
}
