//! Kill-and-restart differential: a daemon driven with `--state-dir` is
//! SIGKILLed at acknowledgement boundaries scattered through a scripted
//! delta stream, restarted over the same state dir each time, and must
//! end with a solution byte-identical to an uninterrupted daemon that was
//! fed the same stream.
//!
//! Killing only *after* an acknowledgement arrives keeps the differential
//! deterministic: the WAL append precedes both the in-memory mutation and
//! the `ok` response, so every acked delta is on disk (page cache at
//! worst — a SIGKILL does not drop it) when the process dies. Unacked
//! lines are simply re-fed to the restarted daemon.
//!
//! The quick variant runs in the normal suite; the heavyweight soak
//! (16384 clients, a 10k-delta stream, ten kills) is `#[ignore]`d and
//! driven by CI's chaos-soak job with `--release`.

use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

fn rp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rp"))
}

/// Runs a one-shot `rp` subcommand (gen / serve-script) to completion.
fn run_tool(args: &[&str]) {
    let out = rp().args(args).output().expect("spawn rp");
    assert!(out.status.success(), "rp {args:?} failed: {}", String::from_utf8_lossy(&out.stderr));
}

struct Daemon {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl Daemon {
    fn spawn(args: &[&str]) -> Daemon {
        let mut child = rp()
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn rp serve");
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        Daemon { child, stdin, stdout }
    }

    /// One request line in, one response line out — the ack boundary the
    /// kill schedule keys on.
    fn send(&mut self, line: &str) -> String {
        writeln!(self.stdin, "{line}").expect("write request");
        self.stdin.flush().expect("flush request");
        let mut response = String::new();
        self.stdout.read_line(&mut response).expect("read response");
        assert!(!response.is_empty(), "daemon died mid-session (after `{line}`)");
        response.trim_end().to_string()
    }

    /// SIGKILL, no notice — the crash the persistence layer exists for.
    fn kill(mut self) {
        self.child.kill().expect("kill daemon");
        self.child.wait().expect("reap daemon");
    }

    fn quit(mut self) {
        assert_eq!(self.send("quit"), "bye");
        drop(self.stdin);
        self.child.wait().expect("reap daemon");
    }
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("rp-crash-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The request lines of a `serve-script` stream, minus its trailing
/// `quit` (the drivers below manage session lifetime themselves).
fn script_lines(path: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(path).expect("read script");
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#') && *l != "quit")
        .map(str::to_string)
        .collect()
}

/// Feeds the whole stream to a single uninterrupted daemon and returns
/// the bytes of its final solution file.
fn reference_run(args: &[&str], lines: &[String], sol: &Path) -> Vec<u8> {
    let mut daemon = Daemon::spawn(args);
    for line in lines {
        let response = daemon.send(line);
        assert!(!response.starts_with("err "), "`{line}` -> {response}");
    }
    daemon.send("solve");
    assert!(daemon.send(&format!("solution {}", sol.display())).starts_with("wrote"));
    daemon.quit();
    std::fs::read(sol).expect("read reference solution")
}

/// Feeds the stream to a persistent daemon, SIGKILLing it right after
/// the ack at each index in `kills` and restarting over the same state
/// dir. Returns the final solution bytes.
fn crash_run(args: &[&str], lines: &[String], kills: &[usize], sol: &Path) -> Vec<u8> {
    let mut daemon = Daemon::spawn(args);
    let mut restarts = 0;
    for (i, line) in lines.iter().enumerate() {
        let response = daemon.send(line);
        assert!(!response.starts_with("err "), "`{line}` -> {response}");
        if kills.contains(&i) {
            daemon.kill();
            daemon = Daemon::spawn(args);
            restarts += 1;
            // Every restart after the first acked delta must report a
            // recovered provenance, never a cold start.
            let health = daemon.send("health");
            assert!(
                health.contains("recovery=wal(") || health.contains("recovery=snapshot"),
                "restart {restarts} started cold: {health}"
            );
        }
    }
    daemon.send("solve");
    assert!(daemon.send(&format!("solution {}", sol.display())).starts_with("wrote"));
    daemon.quit();
    std::fs::read(sol).expect("read crashed-run solution")
}

/// Shared harness: generate an instance + delta stream, run the
/// uninterrupted reference and the kill-riddled run, compare solutions.
fn differential(tag: &str, clients: &str, deltas: &str, batch: &str, kills: usize) {
    let tmp = TempDir::new(tag);
    let inst = tmp.path().join("inst.txt");
    let script = tmp.path().join("script.txt");
    let state = tmp.path().join("state");
    let ref_sol = tmp.path().join("ref-sol.txt");
    let got_sol = tmp.path().join("got-sol.txt");
    run_tool(&[
        "gen",
        "--kind",
        "binary",
        "--clients",
        clients,
        "--seed",
        "42",
        "--dmax-fraction",
        "0.7",
        "--out",
        inst.to_str().unwrap(),
    ]);
    run_tool(&[
        "serve-script",
        "--instance",
        inst.to_str().unwrap(),
        "--deltas",
        deltas,
        "--batch",
        batch,
        "--stats-every",
        "10",
        "--seed",
        "7",
        "--out",
        script.to_str().unwrap(),
    ]);
    let lines = script_lines(&script);
    assert!(lines.len() > kills * 2, "stream too short for the kill schedule");
    // Kills spread evenly over the stream, skewed off batch boundaries so
    // they land after delta acks and solve acks alike.
    let stride = lines.len() / (kills + 1);
    let kill_at: Vec<usize> = (1..=kills).map(|k| k * stride).collect();

    let inst_s = inst.to_str().unwrap().to_string();
    let state_s = state.to_str().unwrap().to_string();
    let plain = ["serve", "--instance", inst_s.as_str()];
    let persisted = [
        "serve",
        "--instance",
        inst_s.as_str(),
        "--state-dir",
        state_s.as_str(),
        "--snapshot-every",
        "64",
    ];

    let expected = reference_run(&plain, &lines, &ref_sol);
    let got = crash_run(&persisted, &lines, &kill_at, &got_sol);
    assert_eq!(got, expected, "[{tag}] recovered state diverged from the uninterrupted run");
}

#[test]
fn killed_and_restarted_daemon_matches_uninterrupted_run() {
    differential("quick", "24", "160", "4", 4);
}

/// The chaos soak CI runs with `--release -- --ignored`: a 16384-client
/// instance, a 10k-delta stream and ten SIGKILLs.
#[test]
#[ignore = "heavyweight: CI chaos-soak job runs this in release mode"]
fn chaos_soak_large_stream_survives_ten_kills() {
    differential("soak", "16384", "10000", "32", 10);
}

#[test]
fn crash_after_directive_aborts_the_daemon_uncleanly() {
    let tmp = TempDir::new("directive");
    let inst = tmp.path().join("inst.txt");
    let state = tmp.path().join("state");
    run_tool(&[
        "gen",
        "--kind",
        "binary",
        "--clients",
        "8",
        "--seed",
        "5",
        "--out",
        inst.to_str().unwrap(),
    ]);
    let inst_s = inst.to_str().unwrap().to_string();
    let state_s = state.to_str().unwrap().to_string();
    let args = ["serve", "--instance", inst_s.as_str(), "--state-dir", state_s.as_str()];

    let mut daemon = Daemon::spawn(&args);
    assert_eq!(daemon.send("pause 0"), "ok paused=0");
    assert_eq!(daemon.send("crash-after 2"), "ok crash-after=2");
    assert!(daemon.send("health").contains("recovery=cold"));
    // The second response after arming is the last one: the process
    // aborts right after writing it, so the pipe closes without a `bye`.
    writeln!(daemon.stdin, "health").unwrap();
    daemon.stdin.flush().unwrap();
    let mut response = String::new();
    daemon.stdout.read_line(&mut response).unwrap();
    assert!(response.starts_with("health"), "{response}");
    let status = daemon.child.wait().expect("reap aborted daemon");
    assert!(!status.success(), "crash-after must not exit cleanly: {status}");
    let mut eof = String::new();
    assert_eq!(daemon.stdout.read_line(&mut eof).unwrap(), 0, "no summary after an abort");
}
