//! `rp serve` — the long-lived placement daemon — and `rp serve-script`,
//! the deterministic delta-stream generator feeding it (CI's soak job and
//! local experiments).
//!
//! The daemon speaks a compact line protocol on stdin/stdout (one request
//! line in, one response line out — see the `rp --help` text and the
//! README's "Serving" section):
//!
//! ```text
//! delta <node> +K|-K|=K [<node> +K|-K|=K ...]   apply demand deltas
//! leave <node>                                  shorthand for `delta <node> =0`
//! solve                                         re-solve under current demand
//! stats                                         lifetime counters + latency quantiles
//! health                                        instance shape + pending + recovery state
//! solution <path>                               write the last solution to a file
//! pause <ms>                                    sleep, then ack (soak pacing)
//! crash-after <n>                               abort after n further responses
//! quit                                          end the session
//! ```
//!
//! Blank lines and `#` comments are ignored. Every failure is a structured
//! one-line `err <code> <message>` response and the session continues —
//! rejected requests never poison the warm engine (pinned by the tests
//! below and `rp-core`'s serve tests).
//!
//! With `--state-dir DIR` the daemon write-ahead-logs every applied delta
//! and snapshots demand state there (see `rp_core::serve::persist`), and
//! recovers it on startup — `health` reports the provenance. `crash-after`
//! exists so crash/recovery soaks are reproducible from a script file: the
//! abort is deliberately unclean (`std::process::abort`), exactly like a
//! SIGKILL mid-stream.

use crate::args::Args;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rp_core::serve::persist::{FsyncPolicy, PersistConfig, Recovery};
use rp_core::serve::{DemandDelta, LatencyHistogram, ServeEngine};
use rp_core::SolverScratch;
use rp_instances::stream::{binary_tree_len, instance_params_from_arena, stream_binary_tree};
use rp_instances::{EdgeDist, RequestDist};
use rp_tree::io as tree_io;
use std::io::{BufRead, Write};
use std::path::Path;
use std::time::{Duration, Instant};

/// `rp serve`: builds the engine from the flags, then runs the protocol
/// loop over stdin/stdout. The returned summary (printed after EOF /
/// `quit`) carries the latency quantiles the CI soak job asserts on;
/// `--assert-p99-us` turns a blown budget into a non-zero exit.
pub fn cmd_serve(args: &Args) -> Result<String, String> {
    let mut engine = build_engine(args)?;
    if args.has_flag("naive") {
        engine.set_naive_resolve(true);
    }
    if let Some(raw) = args.get("threshold") {
        let f: f64 = raw.parse().map_err(|_| format!("invalid --threshold `{raw}`"))?;
        engine.set_full_solve_threshold(f);
    }
    if let Some(raw) = args.get("threads") {
        let t: usize = raw.parse().map_err(|_| format!("invalid --threads `{raw}`"))?;
        if t == 0 {
            return Err("--threads must be at least 1".into());
        }
        engine.set_threads(t);
    }
    if let Some(raw) = args.get("solve-budget-ms") {
        let ms: u64 = raw.parse().map_err(|_| format!("invalid --solve-budget-ms `{raw}`"))?;
        if ms == 0 {
            return Err("--solve-budget-ms must be at least 1".into());
        }
        engine.set_solve_budget(Some(Duration::from_millis(ms)));
    }
    if let Some(dir) = args.get("state-dir") {
        let fsync = match args.get("fsync") {
            None => FsyncPolicy::Always,
            Some(raw) => match raw {
                "always" => FsyncPolicy::Always,
                "never" => FsyncPolicy::Never,
                other => return Err(format!("invalid --fsync `{other}` (use always or never)")),
            },
        };
        let snapshot_every: u64 = args.get_or("snapshot-every", 1024)?;
        if snapshot_every == 0 {
            return Err("--snapshot-every must be at least 1".into());
        }
        engine
            .attach_persist(Path::new(&dir), PersistConfig { fsync, snapshot_every })
            .map_err(|e| format!("--state-dir {dir}: {e}"))?;
    } else if args.get("fsync").is_some() || args.get("snapshot-every").is_some() {
        return Err("--fsync / --snapshot-every need --state-dir".into());
    }
    let assert_p99_us: Option<u64> = match args.get("assert-p99-us") {
        Some(raw) => Some(raw.parse().map_err(|_| format!("invalid --assert-p99-us `{raw}`"))?),
        None => None,
    };
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve_loop(&mut engine, assert_p99_us, stdin.lock(), stdout.lock())
}

/// Builds the serve engine from `--instance FILE` (parsed tree) or
/// `--stream-binary N` (the million-client tier's streamed path: the
/// random binary family goes straight into the arena, no `Tree` is ever
/// materialised, and capacity / dmax are derived exactly like `rp gen`
/// would).
fn build_engine(args: &Args) -> Result<ServeEngine, String> {
    match (args.get("instance"), args.get("stream-binary")) {
        (Some(path), None) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let instance =
                tree_io::parse_instance(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
            ServeEngine::new(&instance).map_err(|e| e.to_string())
        }
        (None, Some(raw)) => {
            let clients: usize =
                raw.parse().map_err(|_| format!("invalid --stream-binary `{raw}`"))?;
            if clients == 0 {
                return Err("--stream-binary needs at least one client".into());
            }
            let seed: u64 = args.get_or("seed", 1)?;
            let requests = RequestDist::Uniform { lo: 1, hi: args.get_or("requests-max", 9)? };
            let edge = EdgeDist::Uniform { lo: 1, hi: args.get_or("edge-max", 3)? };
            let capacity_factor: f64 = args.get_or("capacity-factor", 3.0)?;
            let dmax_fraction: Option<f64> = match args.get("dmax-fraction") {
                Some(raw) => {
                    Some(raw.parse().map_err(|_| format!("invalid --dmax-fraction `{raw}`"))?)
                }
                None => None,
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let mut scratch = SolverScratch::new();
            scratch
                .load_arena_from_stream(
                    binary_tree_len(clients),
                    stream_binary_tree(clients, &edge, &requests, &mut rng),
                )
                .map_err(|e| format!("streamed build failed: {e}"))?;
            let (w, dmax) =
                instance_params_from_arena(scratch.arena(), capacity_factor, dmax_fraction);
            ServeEngine::from_scratch(scratch, w, dmax).map_err(|e| e.to_string())
        }
        _ => Err("serve needs exactly one of --instance FILE or --stream-binary N".into()),
    }
}

/// The protocol loop, factored over generic reader/writer so tests drive
/// whole sessions without a process. Responses are flushed per line (the
/// peer pipelines requests against them); the returned summary is printed
/// by `main` after the stream ends.
fn serve_loop<R: BufRead, W: Write>(
    engine: &mut ServeEngine,
    assert_p99_us: Option<u64>,
    reader: R,
    mut writer: W,
) -> Result<String, String> {
    let mut hist = LatencyHistogram::new();
    let mut commands: u64 = 0;
    // `crash-after n` arms this fuse at n + 1 so the uniform end-of-loop
    // decrement (which also covers the directive's own ack) leaves exactly
    // n further responses before the abort.
    let mut crash_fuse: Option<u64> = None;
    let respond = |writer: &mut W, line: &str| -> Result<(), String> {
        writeln!(writer, "{line}").and_then(|()| writer.flush()).map_err(|e| format!("write: {e}"))
    };
    for line in reader.lines() {
        let line = line.map_err(|e| format!("read: {e}"))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        commands += 1;
        let mut tokens = line.split_whitespace();
        let Some(cmd) = tokens.next() else { continue };
        let reply = match cmd {
            "delta" => apply_deltas(engine, tokens),
            "leave" => match parse_node(tokens.next()) {
                Ok(node) => match engine.apply_delta(node, DemandDelta::Set(0)) {
                    Ok(r) => Ok(format!("ok applied=1 node={node} requests={r}")),
                    Err(e) => Err(format!("err {} {e}", e.code())),
                },
                Err(e) => Err(e),
            },
            "solve" => {
                let start = Instant::now();
                match engine.solve() {
                    Ok(outcome) => {
                        let elapsed = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                        hist.record_ns(elapsed);
                        Ok(format!(
                            "solved replicas={} mode={} dirty={} reused={} recomputed={} elapsed_us={}",
                            outcome.replicas,
                            if outcome.stale {
                                "stale"
                            } else if outcome.incremental {
                                "incremental"
                            } else {
                                "full"
                            },
                            outcome.dirty_clients,
                            outcome.stages_reused,
                            outcome.stages_recomputed,
                            elapsed / 1_000,
                        ))
                    }
                    Err(e) => Err(format!("err {} {e}", e.code())),
                }
            }
            "stats" => Ok(stats_line(engine, &hist)),
            "health" => Ok(health_line(engine)),
            "solution" => match tokens.next() {
                Some(path) => {
                    match std::fs::write(path, tree_io::write_solution(&engine.solution())) {
                        Ok(()) => Ok(format!("wrote {path}")),
                        Err(e) => Err(format!("err io cannot write {path}: {e}")),
                    }
                }
                None => Err("err malformed solution needs a path".to_string()),
            },
            "pause" => match tokens.next().map(str::parse::<u64>) {
                Some(Ok(ms)) => {
                    std::thread::sleep(Duration::from_millis(ms));
                    Ok(format!("ok paused={ms}"))
                }
                _ => Err("err malformed pause needs a millisecond count".to_string()),
            },
            "crash-after" => match tokens.next().map(str::parse::<u64>) {
                Some(Ok(n)) => {
                    crash_fuse = Some(n + 1);
                    Ok(format!("ok crash-after={n}"))
                }
                _ => Err("err malformed crash-after needs a response count".to_string()),
            },
            "quit" => {
                respond(&mut writer, "bye")?;
                break;
            }
            other => Err(format!("err malformed unknown command `{other}`")),
        };
        match reply {
            Ok(line) => respond(&mut writer, &line)?,
            Err(line) => respond(&mut writer, &line)?,
        }
        if let Some(fuse) = crash_fuse.as_mut() {
            *fuse -= 1;
            if *fuse == 0 {
                // Deliberately unclean — no destructors, no buffer flushing
                // beyond the per-line flush that already happened. This is
                // the scripted stand-in for a SIGKILL mid-stream; recovery
                // must come entirely from the WAL + snapshot on disk.
                std::process::abort();
            }
        }
    }

    let stats = engine.stats();
    let mut summary = format!(
        "serve session: commands={commands} deltas={} rejected={} solves={} full={} incremental={}\n\
         stage reuse: reused={} recomputed={}\n\
         solve latency: {}\n",
        stats.deltas_applied,
        stats.deltas_rejected,
        stats.solves,
        stats.full_solves,
        stats.incremental_solves,
        stats.stages_reused,
        stats.stages_recomputed,
        latency_fields(&hist),
    );
    if let Some(budget_us) = assert_p99_us {
        let p99_us = hist.quantile_ns(0.99) / 1_000;
        if p99_us > budget_us {
            return Err(format!(
                "{summary}p99 latency {p99_us} us exceeds the --assert-p99-us budget {budget_us} us"
            ));
        }
        summary.push_str(&format!("p99 budget: {p99_us} us <= {budget_us} us ok\n"));
    }
    Ok(summary)
}

/// `delta <node> <op> [<node> <op> ...]`: applies pairs left to right,
/// stopping at (and reporting) the first failure. Pairs already applied
/// stay applied — deltas are independent mutations, not a transaction —
/// and the error names the offending pair so scripted streams can keep
/// going.
fn apply_deltas<'a, I: Iterator<Item = &'a str>>(
    engine: &mut ServeEngine,
    mut tokens: I,
) -> Result<String, String> {
    let mut applied: u64 = 0;
    let mut last = None;
    while let Some(node_raw) = tokens.next() {
        let node = parse_node(Some(node_raw))?;
        let op_raw = tokens
            .next()
            .ok_or_else(|| format!("err malformed delta for node {node} is missing its op"))?;
        let delta = parse_op(op_raw)?;
        match engine.apply_delta(node, delta) {
            Ok(r) => {
                applied += 1;
                last = Some((node, r));
            }
            Err(e) => return Err(format!("err {} after {applied} applied: {e}", e.code())),
        }
    }
    match last {
        Some((node, r)) => Ok(format!("ok applied={applied} node={node} requests={r}")),
        None => Err("err malformed delta needs at least one <node> <op> pair".to_string()),
    }
}

fn parse_node(raw: Option<&str>) -> Result<u32, String> {
    let raw = raw.ok_or_else(|| "err malformed missing node id".to_string())?;
    raw.parse().map_err(|_| format!("err malformed invalid node id `{raw}`"))
}

/// `+K` / `-K` / `=K`. The amount must parse as `u64`; range violations
/// beyond that (`Tree::MAX_REQUESTS`, capacity) are the engine's
/// structured errors, not parse errors.
fn parse_op(raw: &str) -> Result<DemandDelta, String> {
    let (kind, amount) = raw.split_at(1);
    let k: u64 = match amount.parse() {
        Ok(k) => k,
        Err(_) => return Err(format!("err malformed invalid delta op `{raw}`")),
    };
    match kind {
        "+" => Ok(DemandDelta::Add(k)),
        "-" => Ok(DemandDelta::Sub(k)),
        "=" => Ok(DemandDelta::Set(k)),
        _ => Err(format!("err malformed invalid delta op `{raw}` (use +K, -K or =K)")),
    }
}

fn stats_line(engine: &ServeEngine, hist: &LatencyHistogram) -> String {
    let s = engine.stats();
    format!(
        "stats solves={} full={} incremental={} deltas={} rejected={} reused={} recomputed={} \
         last_dirty={} last_reused={} last_recomputed={} stale_served={} worker_panics={} {}",
        s.solves,
        s.full_solves,
        s.incremental_solves,
        s.deltas_applied,
        s.deltas_rejected,
        s.stages_reused,
        s.stages_recomputed,
        s.last_dirty_clients,
        s.last_reused,
        s.last_recomputed,
        s.stale_served,
        s.worker_panics,
        latency_fields(hist),
    )
}

/// `health` response: instance shape, pending state, and — when
/// persistence is attached — where the demand state came from on startup
/// plus the current on-disk footprint.
fn health_line(engine: &ServeEngine) -> String {
    let s = engine.stats();
    let mut line = format!(
        "health nodes={} clients={} capacity={} dmax={} pending={} solves={}",
        engine.arena().len(),
        engine.client_count(),
        engine.capacity(),
        engine.dmax().map_or_else(|| "none".to_string(), |d| d.to_string()),
        engine.pending_dirty(),
        s.solves,
    );
    line.push_str(&format!(" recovery={}", recovery_label(engine.recovery())));
    if let Some(counters) = engine.persist_counters() {
        line.push_str(&format!(
            " wal_bytes={} snapshot_bytes={}",
            counters.wal_bytes, counters.snapshot_bytes
        ));
    }
    line
}

/// The recovery-provenance vocabulary `health` speaks: `none` (no
/// `--state-dir`), `cold` (state dir was empty), `wal(<records>)`,
/// `snapshot` or `snapshot+wal(<records>)`.
fn recovery_label(recovery: Option<Recovery>) -> String {
    match recovery {
        None => "none".to_string(),
        Some(Recovery::Cold) => "cold".to_string(),
        Some(Recovery::Replayed { snapshot: false, wal_records }) => format!("wal({wal_records})"),
        Some(Recovery::Replayed { snapshot: true, wal_records: 0 }) => "snapshot".to_string(),
        Some(Recovery::Replayed { snapshot: true, wal_records }) => {
            format!("snapshot+wal({wal_records})")
        }
    }
}

fn latency_fields(hist: &LatencyHistogram) -> String {
    format!(
        "samples={} p50_us={} p99_us={} max_us={} mean_us={}",
        hist.count(),
        hist.quantile_ns(0.5) / 1_000,
        hist.quantile_ns(0.99) / 1_000,
        hist.max_ns() / 1_000,
        hist.mean_ns() / 1_000,
    )
}

/// `rp serve-script`: writes a deterministic, always-valid delta stream
/// for an instance — the CI soak job pipes its output into `rp serve`.
/// Tracks each client's running demand so adds never overflow capacity
/// and subs never underflow; emits a `solve` after every `--batch` deltas,
/// a `stats` probe every `--stats-every` solves, and ends with
/// `stats` + `quit`.
///
/// For crash/recovery soaks, `--crash-after N` emits a `crash-after N`
/// directive right after the warm-up (the daemon aborts after N further
/// responses — re-feed the same script to a restarted daemon with the
/// same `--state-dir`), and `--pause-ms M` paces the stream by emitting
/// a `pause M` after every stats probe.
pub fn cmd_serve_script(args: &Args) -> Result<String, String> {
    let path: String = args.require("instance")?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let instance =
        tree_io::parse_instance(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let deltas: u64 = args.get_or("deltas", 1000)?;
    let batch: u64 = args.get_or("batch", 16)?;
    let stats_every: u64 = args.get_or("stats-every", 100)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let crash_after: Option<u64> = match args.get("crash-after") {
        Some(raw) => Some(raw.parse().map_err(|_| format!("invalid --crash-after `{raw}`"))?),
        None => None,
    };
    let pause_ms: Option<u64> = match args.get("pause-ms") {
        Some(raw) => Some(raw.parse().map_err(|_| format!("invalid --pause-ms `{raw}`"))?),
        None => None,
    };
    if batch == 0 {
        return Err("--batch must be at least 1".into());
    }
    let tree = instance.tree();
    let w = instance.capacity();
    let mut clients = Vec::new();
    let mut demand = Vec::new();
    for id in tree.node_ids() {
        if tree.is_client(id) {
            clients.push(id.0);
            demand.push(tree.requests(id));
        }
    }
    if clients.is_empty() {
        return Err(format!("{path} has no clients to generate deltas for"));
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::new();
    out.push_str(&format!(
        "# rp serve-script: instance={path} deltas={deltas} batch={batch} seed={seed}\n"
    ));
    out.push_str("health\nsolve\n");
    if let Some(n) = crash_after {
        out.push_str(&format!("crash-after {n}\n"));
    }
    let mut solves: u64 = 0;
    let mut emitted: u64 = 0;
    while emitted < deltas {
        let run = batch.min(deltas - emitted);
        out.push_str("delta");
        for _ in 0..run {
            let i = rng.gen_range(0..clients.len());
            let cur = demand[i];
            let headroom = w - cur;
            let roll: u8 = rng.gen_range(0..10);
            let (op, new) = if roll < 6 && headroom > 0 {
                let k = rng.gen_range(1..=headroom.min(9));
                (format!("+{k}"), cur + k)
            } else if roll < 9 && cur > 0 {
                let k = rng.gen_range(1..=cur.min(9));
                (format!("-{k}"), cur - k)
            } else {
                let k = rng.gen_range(0..=w.min(9));
                (format!("={k}"), k)
            };
            demand[i] = new;
            out.push_str(&format!(" {} {op}", clients[i]));
        }
        out.push('\n');
        out.push_str("solve\n");
        emitted += run;
        solves += 1;
        if solves.is_multiple_of(stats_every) {
            out.push_str("stats\n");
            if let Some(ms) = pause_ms {
                out.push_str(&format!("pause {ms}\n"));
            }
        }
    }
    out.push_str("stats\nquit\n");
    crate::commands::write_or_return(args.get("out"), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_tree::{Instance, TreeBuilder};
    use std::io::Cursor;

    fn demo_engine() -> ServeEngine {
        let mut b = TreeBuilder::new();
        let root = b.root();
        let n1 = b.add_internal(root, 2);
        b.add_client(n1, 1, 4); // node 2
        b.add_client(n1, 2, 5); // node 3
        let inst = Instance::new(b.freeze().unwrap(), 10, Some(4)).unwrap();
        let mut engine = ServeEngine::new(&inst).unwrap();
        // With only two clients, any single delta trips the default 0.1
        // dirty-fraction threshold; lift it so the tests see both modes.
        engine.set_full_solve_threshold(1.0);
        engine
    }

    fn session(engine: &mut ServeEngine, script: &str) -> (String, Result<String, String>) {
        let mut out = Vec::new();
        let summary = serve_loop(engine, None, Cursor::new(script.as_bytes()), &mut out);
        (String::from_utf8(out).unwrap(), summary)
    }

    #[test]
    fn example_session_matches_the_documented_protocol() {
        let mut engine = demo_engine();
        let script = "\
# warm-up
health
solve
delta 2 +3 3 -1
solve
leave 3
solve
stats
quit
";
        let (out, summary) = session(&mut engine, script);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("health nodes=4 clients=2 capacity=10 dmax=4"), "{out}");
        assert!(lines[1].starts_with("solved replicas="), "{out}");
        assert!(lines[1].contains("mode=full"), "first solve is cold: {out}");
        assert_eq!(lines[2], "ok applied=2 node=3 requests=4");
        assert!(lines[3].contains("mode=incremental"), "{out}");
        assert_eq!(lines[4], "ok applied=1 node=3 requests=0");
        assert!(lines[5].contains("dirty=1"), "{out}");
        assert!(lines[6].starts_with("stats solves=3 full=1 incremental=2"), "{out}");
        assert!(lines[6].contains("p99_us="), "{out}");
        assert_eq!(lines[7], "bye");
        assert_eq!(lines.len(), 8, "one response per request: {out}");
        let summary = summary.unwrap();
        assert!(summary.contains("solves=3 full=1 incremental=2"), "{summary}");
        assert!(summary.contains("samples=3"), "{summary}");
    }

    #[test]
    fn protocol_errors_are_structured_and_do_not_poison_the_engine() {
        let mut engine = demo_engine();
        let script = "\
nonsense
delta
delta 2
delta 2 *3
delta abc +1
delta 99 +1
delta 1 +1
delta 3 -9
delta 3 +7
delta 2 +1 3 -99 2 +1
solve
solution
quit
";
        let (out, summary) = session(&mut engine, script);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("err malformed unknown command"), "{out}");
        assert!(lines[1].starts_with("err malformed delta needs at least one"), "{out}");
        assert!(lines[2].starts_with("err malformed delta for node 2 is missing its op"), "{out}");
        assert!(lines[3].starts_with("err malformed invalid delta op `*3`"), "{out}");
        assert!(lines[4].starts_with("err malformed invalid node id `abc`"), "{out}");
        assert!(lines[5].starts_with("err unknown-node"), "{out}");
        assert!(lines[6].starts_with("err not-a-client"), "{out}");
        assert!(lines[7].starts_with("err underflow"), "{out}");
        assert!(lines[8].starts_with("err capacity"), "{out}");
        // Batch: first pair lands, second fails, third is not attempted.
        assert!(lines[9].starts_with("err underflow after 1 applied"), "{out}");
        // The engine still solves, on exactly the state the errors left:
        // node 2 got +1 (the batch's first pair), nothing else moved.
        assert!(lines[10].starts_with("solved replicas="), "{out}");
        assert!(lines[11].starts_with("err malformed solution needs a path"), "{out}");
        assert_eq!(*lines.last().unwrap(), "bye");
        let summary = summary.unwrap();
        assert!(summary.contains("rejected=5"), "{summary}");
        assert!(summary.contains("deltas=1"), "applied batch pair + nothing else: {summary}");
    }

    #[test]
    fn overflow_deltas_are_rejected_like_the_batch_solvers_would() {
        // The overflow_regressions pattern at the protocol layer: a demand
        // pushed past Tree::MAX_REQUESTS must come back as a structured
        // `err overflow`, a delta pushing the *tree-wide* total past the
        // bound as `err overflow-total`, and the warm engine must keep
        // serving. Client 3 is emptied first so the per-client maximum fits
        // the total exactly — then every further request trips one guard.
        let mut b = TreeBuilder::new();
        let root = b.root();
        let n1 = b.add_internal(root, 2);
        b.add_client(n1, 1, 4);
        b.add_client(n1, 2, 5);
        let inst = Instance::new(b.freeze().unwrap(), u64::MAX, None).unwrap();
        let mut engine = ServeEngine::new(&inst).unwrap();
        let max = rp_tree::Tree::MAX_REQUESTS;
        let script = format!("delta 3 =0\ndelta 2 ={max}\ndelta 2 +1\ndelta 3 +1\nsolve\nquit\n");
        let (out, summary) = session(&mut engine, &script);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "ok applied=1 node=3 requests=0");
        assert_eq!(lines[1], format!("ok applied=1 node=2 requests={max}"));
        assert!(lines[2].starts_with("err overflow"), "{out}");
        assert!(lines[2].contains("exceeds the solver bound"), "{out}");
        assert!(lines[3].starts_with("err overflow-total"), "{out}");
        assert!(lines[3].contains("tree-wide volume bound"), "{out}");
        assert!(lines[4].starts_with("solved replicas="), "{out}");
        summary.unwrap();
    }

    #[test]
    fn p99_assertion_gates_the_exit() {
        let mut engine = demo_engine();
        let mut out = Vec::new();
        // A zero-microsecond budget cannot hold once a solve ran.
        let err =
            serve_loop(&mut engine, Some(0), Cursor::new("solve\nquit\n".as_bytes()), &mut out)
                .unwrap_err();
        assert!(err.contains("exceeds the --assert-p99-us budget"), "{err}");
        // A generous budget passes and says so.
        let mut engine = demo_engine();
        let ok = serve_loop(
            &mut engine,
            Some(60_000_000),
            Cursor::new("solve\nquit\n".as_bytes()),
            &mut Vec::new(),
        )
        .unwrap();
        assert!(ok.contains("p99 budget:"), "{ok}");
    }

    #[test]
    fn serve_script_streams_replay_without_errors() {
        // End to end: `gen` an instance, `serve-script` a delta stream for
        // it, replay the stream through the protocol loop. The generator
        // tracks demand, so the session must be error-free, and every
        // batch must come back solved.
        let dir = std::env::temp_dir().join(format!("rp-serve-script-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let inst = dir.join("inst.txt");
        let inst_s = inst.to_str().unwrap().to_string();
        let run = |argv: &[&str]| {
            crate::commands::dispatch(&argv.iter().map(|s| s.to_string()).collect::<Vec<_>>())
        };
        run(&[
            "gen",
            "--kind",
            "binary",
            "--clients",
            "24",
            "--seed",
            "5",
            "--dmax-fraction",
            "0.8",
            "--out",
            &inst_s,
        ])
        .unwrap();
        let script = run(&[
            "serve-script",
            "--instance",
            &inst_s,
            "--deltas",
            "64",
            "--batch",
            "8",
            "--stats-every",
            "3",
            "--seed",
            "9",
        ])
        .unwrap();
        assert!(script.contains("delta "), "{script}");
        assert!(script.trim_end().ends_with("quit"), "{script}");

        let text = std::fs::read_to_string(&inst).unwrap();
        let instance = tree_io::parse_instance(&text).unwrap();
        let mut engine = ServeEngine::new(&instance).unwrap();
        let (out, summary) = session(&mut engine, &script);
        assert!(!out.contains("\nerr ") && !out.starts_with("err "), "{out}");
        let solves = 1 + 64_u64.div_ceil(8); // warm-up + one per batch
        assert_eq!(out.matches("solved replicas=").count() as u64, solves, "{out}");
        let summary = summary.unwrap();
        assert!(summary.contains("rejected=0"), "{summary}");
        assert!(summary.contains(&format!("solves={solves}")), "{summary}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pause_and_crash_after_directives_acknowledge() {
        let mut engine = demo_engine();
        // An armed fuse of 100 never fires in this short session — the
        // actual abort is pinned by the crash_recovery integration test
        // (it would take the test harness down with it here).
        let script = "\
pause 1
crash-after 100
pause
crash-after x
health
quit
";
        let (out, summary) = session(&mut engine, script);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "ok paused=1");
        assert_eq!(lines[1], "ok crash-after=100");
        assert!(lines[2].starts_with("err malformed pause needs"), "{out}");
        assert!(lines[3].starts_with("err malformed crash-after needs"), "{out}");
        assert!(lines[4].contains("recovery=none"), "no --state-dir: {out}");
        assert!(!lines[4].contains("wal_bytes="), "no counters without persistence: {out}");
        assert_eq!(*lines.last().unwrap(), "bye");
        summary.unwrap();
    }

    #[test]
    fn a_blown_solve_budget_reports_mode_stale() {
        let mut engine = demo_engine();
        let (out, _) = session(&mut engine, "solve\n");
        assert!(out.contains("mode=full"), "{out}");
        // A zero budget blows at the sweep's first probe; the last good
        // solution answers, tagged stale on the wire.
        engine.set_solve_budget(Some(std::time::Duration::ZERO));
        let (out, summary) = session(&mut engine, "delta 2 +1\nsolve\nstats\nquit\n");
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[1].contains("mode=stale"), "{out}");
        assert!(lines[2].contains("stale_served=1"), "{out}");
        assert!(lines[2].contains("worker_panics=0"), "{out}");
        summary.unwrap();
    }

    #[test]
    fn state_dir_sessions_recover_and_report_provenance() {
        let dir = std::env::temp_dir().join(format!("rp-serve-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut engine = demo_engine();
        engine.attach_persist(&dir, PersistConfig::default()).unwrap();
        let (out, _) = session(&mut engine, "health\ndelta 2 +3 3 -1\nsolve\nquit\n");
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains("recovery=cold wal_bytes=0 snapshot_bytes=0"), "{out}");
        let placed = engine.solution();
        drop(engine);

        // A fresh daemon over the same state dir picks the demand back up
        // and says where it came from.
        let mut revived = demo_engine();
        revived.attach_persist(&dir, PersistConfig::default()).unwrap();
        let (out, summary) = session(&mut revived, "health\nsolve\nquit\n");
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains("recovery=wal(2)"), "{out}");
        assert!(!lines[0].contains("wal_bytes=0 "), "the WAL is non-empty: {out}");
        assert!(lines[1].starts_with("solved replicas="), "{out}");
        assert_eq!(revived.solution(), placed, "recovered placement is bit-identical");
        summary.unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_script_places_crash_and_pause_directives() {
        let dir = std::env::temp_dir().join(format!("rp-serve-script-dir-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let inst = dir.join("inst.txt");
        let inst_s = inst.to_str().unwrap().to_string();
        let run = |argv: &[&str]| {
            crate::commands::dispatch(&argv.iter().map(|s| s.to_string()).collect::<Vec<_>>())
        };
        run(&["gen", "--kind", "binary", "--clients", "8", "--seed", "3", "--out", &inst_s])
            .unwrap();
        let script = run(&[
            "serve-script",
            "--instance",
            &inst_s,
            "--deltas",
            "16",
            "--batch",
            "4",
            "--stats-every",
            "2",
            "--crash-after",
            "7",
            "--pause-ms",
            "5",
        ])
        .unwrap();
        // The crash directive lands right after the warm-up, so a killed
        // and restarted daemon replaying the same script makes progress
        // past the warm-up before the fuse arms again.
        assert!(script.contains("solve\ncrash-after 7\n"), "{script}");
        assert_eq!(script.matches("crash-after ").count(), 1, "{script}");
        // Every stats probe is followed by the pacing pause.
        assert_eq!(
            script.matches("stats\npause 5\n").count() + 1, // final stats has no pause
            script.matches("stats\n").count(),
            "{script}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn solution_command_writes_the_current_placement() {
        let dir = std::env::temp_dir().join(format!("rp-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sol = dir.join("sol.txt");
        let mut engine = demo_engine();
        let script = format!("solve\nsolution {}\nquit\n", sol.to_str().unwrap());
        let (out, summary) = session(&mut engine, &script);
        summary.unwrap();
        assert!(out.contains(&format!("wrote {}", sol.to_str().unwrap())), "{out}");
        let text = std::fs::read_to_string(&sol).unwrap();
        // The text format carries fragments only (forced zero-fragment
        // replicas are recomputed by consumers), so compare what it keeps.
        let parsed = tree_io::parse_solution(&text).unwrap();
        let current = engine.solution();
        assert_eq!(parsed.fragments().collect::<Vec<_>>(), current.fragments().collect::<Vec<_>>());
        assert!(text.contains(&format!("replicas {}", current.replica_count())), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
