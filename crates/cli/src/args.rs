//! Minimal `--flag value` argument parsing (kept dependency-free).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand, `--key value` options and bare flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    options: BTreeMap<String, Vec<String>>,
    flags: Vec<String>,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
}

impl Args {
    /// Parses `argv` (without the program name).
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut args = Args::default();
        let mut iter = argv.iter().peekable();
        args.command = iter.next().cloned().unwrap_or_default();
        while let Some(token) = iter.next() {
            if let Some(name) = token.strip_prefix("--") {
                if name.is_empty() {
                    return Err("empty option name `--`".into());
                }
                // A value follows unless the next token is another option or absent.
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let value = iter.next().cloned().expect("peeked");
                        args.options.entry(name.to_string()).or_default().push(value);
                    }
                    _ => args.flags.push(name.to_string()),
                }
            } else {
                args.positional.push(token.clone());
            }
        }
        Ok(args)
    }

    /// Last value of `--name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).and_then(|v| v.last()).map(|s| s.as_str())
    }

    /// All values of a repeatable `--name` option.
    pub fn get_all(&self, name: &str) -> Vec<&str> {
        self.options.get(name).map(|v| v.iter().map(|s| s.as_str()).collect()).unwrap_or_default()
    }

    /// Whether the bare flag `--name` was given.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.contains(&name.to_string())
    }

    /// Required option, parsed.
    pub fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        let raw = self.get(name).ok_or_else(|| format!("missing required option --{name}"))?;
        raw.parse::<T>().map_err(|_| format!("invalid value for --{name}: `{raw}`"))
    }

    /// Optional option with a default, parsed.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => {
                raw.parse::<T>().map_err(|_| format!("invalid value for --{name}: `{raw}`"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_vec(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_command_options_and_flags() {
        let args = Args::parse(&to_vec(&["solve", "--instance", "a.txt", "--full", "--seed", "7"]))
            .unwrap();
        assert_eq!(args.command, "solve");
        assert_eq!(args.get("instance"), Some("a.txt"));
        assert!(args.has_flag("full"));
        assert_eq!(args.get_or::<u64>("seed", 0).unwrap(), 7);
        assert_eq!(args.get_or::<u64>("missing", 42).unwrap(), 42);
    }

    #[test]
    fn repeatable_options() {
        let args =
            Args::parse(&to_vec(&["simulate", "--fail", "1:0:5", "--fail", "2:3:9"])).unwrap();
        assert_eq!(args.get_all("fail"), vec!["1:0:5", "2:3:9"]);
    }

    #[test]
    fn missing_required_option_is_an_error() {
        let args = Args::parse(&to_vec(&["solve"])).unwrap();
        assert!(args.require::<String>("instance").is_err());
    }

    #[test]
    fn invalid_numeric_value_is_an_error() {
        let args = Args::parse(&to_vec(&["gen", "--clients", "many"])).unwrap();
        assert!(args.require::<usize>("clients").is_err());
    }

    #[test]
    fn positional_arguments_are_collected() {
        let args = Args::parse(&to_vec(&["experiment", "e1", "--full"])).unwrap();
        assert_eq!(args.positional, vec!["e1"]);
        assert!(args.has_flag("full"));
    }
}
