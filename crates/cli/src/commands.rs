//! Subcommand implementations. Every command returns the text to print, so
//! the commands are unit-testable without spawning processes.

use crate::args::Args;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rp_core::Algorithm;
use rp_harness::Effort;
use rp_instances::random::{random_binary_tree, random_kary_tree, wrap_instance};
use rp_instances::worst_case::{single_gen_tight, single_nod_tight};
use rp_instances::{EdgeDist, RequestDist};
use rp_sim::{Burst, Failure, SimConfig};
use rp_tree::{io, validate, Instance, NodeId, Policy, Solution};

/// Usage text printed on errors.
pub const USAGE: &str = "\
usage: rp <command> [options]

commands:
  gen         generate an instance
              --kind binary|kary|fig3|fig4  --clients N  [--arity K] [--m M] [--delta D]
              [--requests-max R] [--edge-max E] [--capacity-factor F] [--dmax-fraction F]
              [--seed S] [--out FILE]
  solve       run an algorithm on an instance
              --instance FILE  --algorithm single-gen|single-nod|multiple-bin|clients-only|multiple-greedy
              [--out FILE] [--stage-stats] [--threads N]
  exact       compute the exact optimum (small instances)
              --instance FILE  --policy single|multiple
  validate    check a solution file against an instance
              --instance FILE  --solution FILE  --policy single|multiple
  simulate    replay request traffic over a solution
              --instance FILE  --solution FILE  [--ticks N] [--fail NODE:FROM:TO]... [--burst FROM:TO:FACTOR]
  experiment  run a paper experiment (e1..e9 or all)
              <id>  [--full] [--csv]
  bench-gate  compare a BENCH_scaling.json against a checked-in baseline
              --current FILE  --baseline FILE  [--max-regress F] [--clients N]
              [--algorithm NAME]  or  --manifest FILE with [[gate]] entries
  serve       long-lived placement daemon on stdin/stdout (see README \"Serving\")
              --instance FILE | --stream-binary N [--seed S] [--capacity-factor F]
              [--dmax-fraction F] [--edge-max E] [--requests-max R]
              [--threshold F] [--naive] [--assert-p99-us N] [--threads N]
              [--solve-budget-ms N] [--state-dir DIR] [--fsync always|never]
              [--snapshot-every N]
  serve-script  generate a deterministic delta stream for `rp serve`
              --instance FILE  [--deltas N] [--batch K] [--stats-every M]
              [--seed S] [--crash-after N] [--pause-ms M] [--out FILE]
";

/// Dispatches a parsed command line and returns the output to print.
pub fn dispatch(argv: &[String]) -> Result<String, String> {
    let args = Args::parse(argv)?;
    match args.command.as_str() {
        "gen" => cmd_gen(&args),
        "solve" => cmd_solve(&args),
        "exact" => cmd_exact(&args),
        "validate" => cmd_validate(&args),
        "simulate" => cmd_simulate(&args),
        "experiment" => cmd_experiment(&args),
        "bench-gate" => cmd_bench_gate(&args),
        "serve" => crate::serve::cmd_serve(&args),
        "serve-script" => crate::serve::cmd_serve_script(&args),
        "" | "help" | "--help" => Ok(USAGE.to_string()),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn load_instance(path: &str) -> Result<Instance, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    io::parse_instance(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn load_solution(path: &str) -> Result<Solution, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    io::parse_solution(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

pub(crate) fn write_or_return(out: Option<&str>, content: String) -> Result<String, String> {
    match out {
        Some(path) => {
            std::fs::write(path, &content).map_err(|e| format!("cannot write {path}: {e}"))?;
            Ok(format!("wrote {path}\n"))
        }
        None => Ok(content),
    }
}

fn parse_policy(name: &str) -> Result<Policy, String> {
    match name {
        "single" => Ok(Policy::Single),
        "multiple" => Ok(Policy::Multiple),
        other => Err(format!("unknown policy `{other}` (use single or multiple)")),
    }
}

fn cmd_gen(args: &Args) -> Result<String, String> {
    let kind = args.get("kind").unwrap_or("binary");
    let seed: u64 = args.get_or("seed", 1)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let requests = RequestDist::Uniform { lo: 1, hi: args.get_or("requests-max", 9)? };
    let edge = EdgeDist::Uniform { lo: 1, hi: args.get_or("edge-max", 3)? };
    let capacity_factor: f64 = args.get_or("capacity-factor", 3.0)?;
    let dmax_fraction: Option<f64> = match args.get("dmax-fraction") {
        Some(raw) => Some(raw.parse().map_err(|_| format!("invalid --dmax-fraction `{raw}`"))?),
        None => None,
    };

    let instance = match kind {
        "binary" => {
            let clients: usize = args.get_or("clients", 32)?;
            wrap_instance(
                random_binary_tree(clients, &edge, &requests, &mut rng),
                capacity_factor,
                dmax_fraction,
            )
        }
        "kary" => {
            let clients: usize = args.get_or("clients", 32)?;
            let arity: usize = args.get_or("arity", 3)?;
            wrap_instance(
                random_kary_tree(clients, arity, &edge, &requests, &mut rng),
                capacity_factor,
                dmax_fraction,
            )
        }
        "fig3" => {
            let m: usize = args.get_or("m", 4)?;
            let delta: usize = args.get_or("delta", 3)?;
            single_gen_tight(m, delta).instance
        }
        "fig4" => {
            let k: usize = args.get_or("m", 8)?;
            single_nod_tight(k).instance
        }
        other => return Err(format!("unknown instance kind `{other}`")),
    };
    write_or_return(args.get("out"), io::write_instance(&instance))
}

fn cmd_solve(args: &Args) -> Result<String, String> {
    let instance = load_instance(&args.require::<String>("instance")?)?;
    let name: String = args.require("algorithm")?;
    let algorithm =
        Algorithm::from_name(&name).ok_or_else(|| format!("unknown algorithm `{name}`"))?;
    let threads: usize = args.get_or("threads", 1)?;
    if threads == 0 {
        return Err("--threads must be at least 1".to_string());
    }
    let mut scratch = rp_core::SolverScratch::new();
    let solution = if threads > 1 {
        solve_parallel(&instance, algorithm, &mut scratch, threads)?
    } else {
        rp_core::solve_with(&instance, algorithm, &mut scratch).map_err(|e| e.to_string())?
    };
    let stats = validate(&instance, algorithm.policy(), &solution).map_err(|e| e.to_string())?;
    let mut out = String::new();
    out.push_str(&format!(
        "algorithm: {}\npolicy: {}\nreplicas: {}\nmax load: {}\navg utilisation: {:.3}\nmax distance: {}\n",
        algorithm.name(),
        algorithm.policy(),
        stats.replica_count,
        stats.max_load,
        stats.avg_utilisation,
        stats.max_distance,
    ));
    if args.has_flag("stage-stats") {
        let s = scratch.stage_stats();
        out.push_str(&format!(
            "stage stats:\n  stages: {}\n  subsets enumerated: {}\n  subsets routed: {}\n  \
             subsets pruned: {}\n  shared-prefix routes: {}\n  dp sizes skipped: {}\n  \
             dp bound skips: {}\n  dp fallbacks: {}\n  dp node visits: {}\n  \
             commit volume touched: {}\n  commit volume skipped: {}\n  \
             router carry merges: {}\n  router carried peak: {}\n  \
             scope cache hits: {}\n  warm seeds used: {}\n  repairs: {}\n",
            s.stages,
            s.subsets_enumerated,
            s.subsets_routed,
            s.subsets_pruned,
            s.prefix_routes,
            s.dp_sizes_skipped,
            s.dp_bound_skips,
            s.dp_fallbacks,
            s.dp_node_visits,
            s.commit_touched,
            s.commit_skipped,
            s.router_carry_merges,
            s.router_carried_peak,
            s.scope_cache_hits,
            s.warm_seeds_used,
            s.repairs,
        ));
    }
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, io::write_solution(&solution))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            out.push_str(&format!("solution written to {path}\n"));
        }
        None => out.push_str(&io::write_solution(&solution)),
    }
    Ok(out)
}

/// `solve --threads N`: routes the three arena-based algorithms through
/// their frontier-parallel entry points. Solutions (and stage counters) are
/// bit-identical to the serial path for every thread count — pinned by
/// `rp-core`'s determinism tests — so `--threads` is purely a wall-clock
/// knob. The baselines have no parallel path.
fn solve_parallel(
    instance: &Instance,
    algorithm: Algorithm,
    scratch: &mut rp_core::SolverScratch,
    threads: usize,
) -> Result<Solution, String> {
    let w = instance.capacity();
    let dmax = instance.dmax();
    scratch.load_arena(instance.tree());
    match algorithm {
        Algorithm::SingleGen => rp_core::single_gen_par(scratch, w, dmax, threads),
        Algorithm::SingleNod => rp_core::single_nod_par(scratch, w, threads),
        Algorithm::MultipleBin => rp_core::multiple_bin_par(scratch, w, dmax, threads),
        Algorithm::ClientsOnly | Algorithm::MultipleGreedy => {
            return Err(format!("--threads is not supported for `{}`", algorithm.name()))
        }
    }
    .map_err(|e| e.to_string())
}

fn cmd_exact(args: &Args) -> Result<String, String> {
    let instance = load_instance(&args.require::<String>("instance")?)?;
    let policy = parse_policy(&args.require::<String>("policy")?)?;
    match rp_exact::optimal_solution(&instance, policy) {
        Some(solution) => {
            let stats = validate(&instance, policy, &solution).map_err(|e| e.to_string())?;
            Ok(format!(
                "policy: {policy}\noptimal replicas: {}\n{}",
                stats.replica_count,
                io::write_solution(&solution)
            ))
        }
        None => Ok(format!("policy: {policy}\ninfeasible\n")),
    }
}

fn cmd_validate(args: &Args) -> Result<String, String> {
    let instance = load_instance(&args.require::<String>("instance")?)?;
    let solution = load_solution(&args.require::<String>("solution")?)?;
    let policy = parse_policy(&args.require::<String>("policy")?)?;
    match validate(&instance, policy, &solution) {
        Ok(stats) => Ok(format!(
            "valid\nreplicas: {}\nmax load: {}\nmax distance: {}\n",
            stats.replica_count, stats.max_load, stats.max_distance
        )),
        Err(e) => Ok(format!("invalid: {e}\n")),
    }
}

fn parse_failure(raw: &str) -> Result<Failure, String> {
    let parts: Vec<&str> = raw.split(':').collect();
    if parts.len() != 3 {
        return Err(format!("--fail expects NODE:FROM:TO, got `{raw}`"));
    }
    Ok(Failure {
        server: NodeId(parts[0].parse().map_err(|_| format!("invalid node `{}`", parts[0]))?),
        from_tick: parts[1].parse().map_err(|_| format!("invalid tick `{}`", parts[1]))?,
        to_tick: parts[2].parse().map_err(|_| format!("invalid tick `{}`", parts[2]))?,
    })
}

fn parse_burst(raw: &str) -> Result<Burst, String> {
    let parts: Vec<&str> = raw.split(':').collect();
    if parts.len() != 3 {
        return Err(format!("--burst expects FROM:TO:FACTOR, got `{raw}`"));
    }
    Ok(Burst {
        from_tick: parts[0].parse().map_err(|_| format!("invalid tick `{}`", parts[0]))?,
        to_tick: parts[1].parse().map_err(|_| format!("invalid tick `{}`", parts[1]))?,
        factor: parts[2].parse().map_err(|_| format!("invalid factor `{}`", parts[2]))?,
    })
}

fn cmd_simulate(args: &Args) -> Result<String, String> {
    let instance = load_instance(&args.require::<String>("instance")?)?;
    let solution = load_solution(&args.require::<String>("solution")?)?;
    let mut config = SimConfig::new(args.get_or("ticks", 1000)?);
    for raw in args.get_all("fail") {
        config = config.with_failure(parse_failure(raw)?);
    }
    if let Some(raw) = args.get("burst") {
        config = config.with_burst(parse_burst(raw)?);
    }
    let report = rp_sim::simulate(&instance, &solution, &config);
    let mut out = String::new();
    out.push_str(&format!(
        "ticks: {}\nissued: {}\nserved: {}\nrerouted: {}\ndropped: {}\navailability: {:.4}\nmean latency: {:.3}\nmax latency: {}\nmean utilisation: {:.3}\n",
        report.ticks,
        report.issued,
        report.served,
        report.rerouted,
        report.dropped,
        report.availability(),
        report.mean_latency(),
        report.max_latency,
        report.mean_utilisation(),
    ));
    out.push_str("replica loads:\n");
    for r in report.replicas() {
        out.push_str(&format!(
            "  {}: served {} peak {} utilisation {:.3}\n",
            r.node, r.total_served, r.peak_load, r.mean_utilisation
        ));
    }
    Ok(out)
}

fn cmd_experiment(args: &Args) -> Result<String, String> {
    let id = args
        .positional
        .first()
        .cloned()
        .or_else(|| args.get("id").map(|s| s.to_string()))
        .unwrap_or_else(|| "all".to_string());
    let effort = if args.has_flag("full") { Effort::Full } else { Effort::Quick };
    let tables = rp_harness::run_by_name(&id, effort)
        .ok_or_else(|| format!("unknown experiment `{id}` (use e1..e9 or all)"))?;
    let mut out = String::new();
    for table in tables {
        if args.has_flag("csv") {
            out.push_str(&table.to_csv());
            out.push('\n');
        } else {
            out.push_str(&table.to_markdown());
            out.push('\n');
        }
    }
    Ok(out)
}

/// CI perf gate: compares one algorithm's cells (default `multiple-bin`,
/// override with `--algorithm`) of a fresh `BENCH_scaling.json` against a
/// checked-in baseline and fails (returns
/// `Err`, i.e. a non-zero exit) when any gated cell regressed beyond the
/// allowed fraction. Manifest gates pick their column via `metric` (solve
/// median or peak heap bytes) and their rows via `variant` (dmax, nod or
/// both). Cells missing from either report are skipped — the baseline may
/// have been recorded on a different grid — but at least one cell must be
/// comparable.
/// Which column of a grid cell a gate compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GateMetric {
    /// Median solve time (`median_ns`) — the default.
    Median,
    /// Peak live heap bytes of the reference solve (`peak_alloc_bytes`).
    /// Cells whose peak was never recorded (zero) are skipped, so the gate
    /// degrades gracefully against pre-memory-column baselines.
    PeakAlloc,
}

/// Which dmax variants of the (algorithm, clients) pair a gate compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GateVariant {
    Dmax,
    Nod,
    Both,
}

impl GateVariant {
    fn includes(self, dmax: bool) -> bool {
        match self {
            GateVariant::Dmax => dmax,
            GateVariant::Nod => !dmax,
            GateVariant::Both => true,
        }
    }
}

/// One perf gate: an (algorithm, clients) pair compared across the selected
/// dmax variants, from the command line or a `[[gate]]` manifest entry.
#[derive(Debug)]
struct GateSpec {
    name: String,
    algorithm: String,
    clients: u64,
    max_regress: f64,
    /// Absolute slack added on top of the `max_regress` ratio, in the
    /// metric's unit (ns for medians, bytes for peak-alloc). Lets the
    /// single-sample huge-tier gates absorb fixed scheduling noise that a
    /// pure ratio would turn into flaky failures on millisecond baselines.
    tolerance: u128,
    metric: GateMetric,
    variant: GateVariant,
}

/// Parses the TOML subset used by `bench/gates.toml`: `[[gate]]` section
/// headers, `key = value` pairs (quoted strings or bare numbers), and `#`
/// comments. Unknown keys are an error so typos fail the gate loudly
/// instead of silently weakening it.
fn parse_gate_manifest(text: &str) -> Result<Vec<GateSpec>, String> {
    let mut gates: Vec<GateSpec> = Vec::new();
    let mut open = false;
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        // Values are quoted strings or numbers, never containing `#`, so a
        // plain split is enough to strip trailing comments.
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[gate]]" {
            if let Some(g) = gates.last() {
                if g.name.is_empty() {
                    return Err(format!("gate before line {lineno} is missing `name`"));
                }
            }
            gates.push(GateSpec {
                name: String::new(),
                algorithm: "multiple-bin".into(),
                clients: 0,
                max_regress: 0.30,
                tolerance: 0,
                metric: GateMetric::Median,
                variant: GateVariant::Both,
            });
            open = true;
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {lineno}: expected `key = value`, got `{line}`"));
        };
        if !open {
            return Err(format!("line {lineno}: `{}` appears before any [[gate]]", key.trim()));
        }
        let gate = gates.last_mut().expect("open implies a gate");
        let key = key.trim();
        let value = value.trim().trim_matches('"');
        match key {
            "name" => gate.name = value.to_string(),
            "algorithm" => gate.algorithm = value.to_string(),
            "clients" => {
                gate.clients =
                    value.parse().map_err(|_| format!("line {lineno}: bad clients `{value}`"))?;
            }
            "max-regress" => {
                gate.max_regress = value
                    .parse()
                    .map_err(|_| format!("line {lineno}: bad max-regress `{value}`"))?;
            }
            "tolerance" => {
                gate.tolerance =
                    value.parse().map_err(|_| format!("line {lineno}: bad tolerance `{value}`"))?;
            }
            "metric" => {
                gate.metric = match value {
                    "median" => GateMetric::Median,
                    "peak-alloc" => GateMetric::PeakAlloc,
                    other => {
                        return Err(format!(
                            "line {lineno}: unknown metric `{other}` (use median or peak-alloc)"
                        ))
                    }
                };
            }
            "variant" => {
                gate.variant = match value {
                    "dmax" => GateVariant::Dmax,
                    "nod" => GateVariant::Nod,
                    "both" => GateVariant::Both,
                    other => {
                        return Err(format!(
                            "line {lineno}: unknown variant `{other}` (use dmax, nod or both)"
                        ))
                    }
                };
            }
            other => return Err(format!("line {lineno}: unknown gate key `{other}`")),
        }
    }
    for gate in &gates {
        if gate.name.is_empty() {
            return Err("a [[gate]] entry is missing `name`".into());
        }
        if gate.clients == 0 {
            return Err(format!("gate `{}` is missing `clients`", gate.name));
        }
    }
    if gates.is_empty() {
        return Err("manifest defines no [[gate]] entries".into());
    }
    Ok(gates)
}

/// Compares one gate's dmax + nod cells between the two reports, appending
/// human-readable verdicts to `out` and failures to `failures`. Returns how
/// many cells were comparable.
fn run_gate(
    gate: &GateSpec,
    current: &rp_bench::scaling::ScalingReport,
    baseline: &rp_bench::scaling::ScalingReport,
    out: &mut String,
    failures: &mut Vec<String>,
) -> usize {
    let GateSpec { algorithm, clients, max_regress, tolerance, metric, variant, .. } = gate;
    let mut compared = 0;
    for dmax in [true, false] {
        if !variant.includes(dmax) {
            continue;
        }
        let label = if dmax { "dmax" } else { "nod" };
        let lookup = |report: &rp_bench::scaling::ScalingReport| match metric {
            GateMetric::Median => report.median_of(algorithm, dmax, *clients),
            GateMetric::PeakAlloc => {
                report.peak_alloc_of(algorithm, dmax, *clients).map(u128::from)
            }
        };
        let unit = match metric {
            GateMetric::Median => "ns",
            GateMetric::PeakAlloc => "peak bytes",
        };
        let (Some(cur), Some(base)) = (lookup(current), lookup(baseline)) else {
            out.push_str(&format!("{algorithm}/{label}/{clients}: not in both reports, skipped\n"));
            continue;
        };
        compared += 1;
        let limit = (base as f64) * (1.0 + max_regress) + *tolerance as f64;
        let ratio = cur as f64 / (base as f64).max(1.0);
        let verdict = if (cur as f64) <= limit { "ok" } else { "REGRESSED" };
        let slack =
            if *tolerance > 0 { format!(" + {tolerance} {unit} slack") } else { String::new() };
        out.push_str(&format!(
            "{algorithm}/{label}/{clients}: current {cur} {unit} vs baseline {base} {unit} \
             ({ratio:.2}x, limit {:.2}x{slack}) {verdict}\n",
            1.0 + max_regress
        ));
        if (cur as f64) > limit {
            failures.push(format!("{algorithm}/{label}/{clients} at {ratio:.2}x"));
        }
    }
    compared
}

fn cmd_bench_gate(args: &Args) -> Result<String, String> {
    let current_path: String = args.require("current")?;
    let baseline_path: String = args.require("baseline")?;
    let gates = match args.get("manifest") {
        Some(manifest_path) => {
            if args.get("clients").is_some() || args.get("algorithm").is_some() {
                return Err("--manifest replaces --clients/--algorithm; drop them".into());
            }
            let text = std::fs::read_to_string(manifest_path)
                .map_err(|e| format!("cannot read {manifest_path}: {e}"))?;
            parse_gate_manifest(&text).map_err(|e| format!("{manifest_path}: {e}"))?
        }
        None => vec![GateSpec {
            name: "cli".into(),
            algorithm: args.get("algorithm").unwrap_or("multiple-bin").to_string(),
            clients: args.get_or("clients", 1024)?,
            max_regress: args.get_or("max-regress", 0.30)?,
            tolerance: 0,
            metric: GateMetric::Median,
            variant: GateVariant::Both,
        }],
    };
    let read = |path: &str| -> Result<rp_bench::scaling::ScalingReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        rp_bench::scaling::ScalingReport::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let current = read(&current_path)?;
    let baseline = read(&baseline_path)?;

    let mut out = String::new();
    if current.quick != baseline.quick {
        out.push_str(
            "warning: comparing reports from different modes (quick vs full sampling); \
             medians are noisier across modes\n",
        );
    }
    let mut failures = Vec::new();
    for gate in &gates {
        if gates.len() > 1 {
            out.push_str(&format!("[{}]\n", gate.name));
        }
        let compared = run_gate(gate, &current, &baseline, &mut out, &mut failures);
        if compared == 0 {
            return Err(format!(
                "{out}no comparable {} cells at {} clients between \
                 {current_path} and {baseline_path}",
                gate.algorithm, gate.clients
            ));
        }
    }
    if failures.is_empty() {
        Ok(out)
    } else {
        Err(format!("{out}perf gate failed: {}", failures.join(", ")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(argv: &[&str]) -> Result<String, String> {
        dispatch(&argv.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    fn gate_report(median_dmax: u128, median_nod: u128) -> String {
        use rp_bench::scaling::{ScalingCell, ScalingReport};
        let cell = |dmax: bool, median_ns: u128| ScalingCell {
            algorithm: "multiple-bin".into(),
            dmax,
            clients: 1024,
            nodes: 2047,
            replicas: 343,
            median_ns,
            mean_ns: median_ns,
            samples: 5,
            stage_subsets: 0,
            stage_routed: 0,
            stage_pruned: 0,
            dp_node_visits: 0,
            dp_fallbacks: 0,
            commit_touched: 0,
            commit_skipped: 0,
            router_carry_merges: 0,
            router_carried_peak: 0,
            scope_cache_hits: 0,
            warm_seeds_used: 0,
            peak_alloc_bytes: 0,
        };
        ScalingReport { quick: true, cells: vec![cell(true, median_dmax), cell(false, median_nod)] }
            .to_json()
    }

    #[test]
    fn bench_gate_passes_within_budget_and_fails_beyond() {
        let dir = std::env::temp_dir().join(format!("rp-gate-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let good = dir.join("good.json");
        let bad = dir.join("bad.json");
        std::fs::write(&base, gate_report(10_000_000, 2_000_000)).unwrap();
        std::fs::write(&good, gate_report(12_000_000, 2_100_000)).unwrap();
        std::fs::write(&bad, gate_report(14_000_000, 2_100_000)).unwrap();

        let ok = run(&[
            "bench-gate",
            "--current",
            good.to_str().unwrap(),
            "--baseline",
            base.to_str().unwrap(),
        ])
        .unwrap();
        assert!(ok.contains("ok"), "{ok}");
        assert!(!ok.contains("REGRESSED"));

        let err = run(&[
            "bench-gate",
            "--current",
            bad.to_str().unwrap(),
            "--baseline",
            base.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.contains("perf gate failed"), "{err}");
        assert!(err.contains("dmax"), "{err}");

        // A looser budget lets the same report through.
        let ok = run(&[
            "bench-gate",
            "--current",
            bad.to_str().unwrap(),
            "--baseline",
            base.to_str().unwrap(),
            "--max-regress",
            "0.5",
        ])
        .unwrap();
        assert!(!ok.contains("REGRESSED"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_gate_rejects_incomparable_reports() {
        let dir = std::env::temp_dir().join(format!("rp-gate-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.json");
        std::fs::write(&a, gate_report(1, 1)).unwrap();
        let err = run(&[
            "bench-gate",
            "--current",
            a.to_str().unwrap(),
            "--baseline",
            a.to_str().unwrap(),
            "--clients",
            "4096",
        ])
        .unwrap_err();
        assert!(err.contains("no comparable"), "{err}");

        // The gated algorithm is selectable; a family absent from the
        // report is rejected the same way.
        let err = run(&[
            "bench-gate",
            "--current",
            a.to_str().unwrap(),
            "--baseline",
            a.to_str().unwrap(),
            "--algorithm",
            "multiple-bin-deep",
        ])
        .unwrap_err();
        assert!(err.contains("no comparable multiple-bin-deep"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_gate_manifest_drives_multiple_gates() {
        let dir = std::env::temp_dir().join(format!("rp-gate-test3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let cur = dir.join("cur.json");
        let manifest = dir.join("gates.toml");
        std::fs::write(&base, gate_report(10_000_000, 2_000_000)).unwrap();
        std::fs::write(&cur, gate_report(12_000_000, 2_100_000)).unwrap();
        std::fs::write(
            &manifest,
            "# perf gates\n\
             [[gate]]\n\
             name = \"mb-1024\"\n\
             clients = 1024  # trailing comment\n\
             \n\
             [[gate]]\n\
             name = \"mb-1024-tight\"\n\
             algorithm = \"multiple-bin\"\n\
             clients = 1024\n\
             max-regress = 0.05\n\
             \n\
             [[gate]]\n\
             name = \"mb-1024-slack\"\n\
             clients = 1024\n\
             max-regress = 0.05\n\
             tolerance = 5000000\n",
        )
        .unwrap();
        let argv = |m: &std::path::Path| {
            vec![
                "bench-gate".to_string(),
                "--current".into(),
                cur.to_str().unwrap().into(),
                "--baseline".into(),
                base.to_str().unwrap().into(),
                "--manifest".into(),
                m.to_str().unwrap().into(),
            ]
        };
        // The 20% dmax regression passes the default 0.30 gate, fails the
        // tight 0.05 one, and passes it again once a 5 ms absolute
        // tolerance tops up the ratio limit — all verdicts in one
        // invocation.
        let err = dispatch(&argv(&manifest)).unwrap_err();
        assert!(err.contains("[mb-1024]"), "{err}");
        assert!(err.contains("[mb-1024-tight]"), "{err}");
        assert!(err.contains("[mb-1024-slack]"), "{err}");
        assert!(err.contains("5000000 ns slack"), "{err}");
        assert!(err.contains("perf gate failed"), "{err}");
        assert_eq!(err.matches("REGRESSED").count(), 1, "{err}");

        // Mixing manifest and single-gate selectors is ambiguous.
        let mut both = argv(&manifest);
        both.extend(["--clients".to_string(), "1024".into()]);
        let err = dispatch(&both).unwrap_err();
        assert!(err.contains("--manifest replaces"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn peak_alloc_gate_compares_memory_and_skips_unrecorded_cells() {
        use rp_bench::scaling::{ScalingCell, ScalingReport};
        // One dmax cell with a recorded peak, one nod cell without (as a
        // report written before the allocator hook would have it).
        let peak_report = |peak: u64| {
            let cell = |dmax: bool, peak_alloc_bytes: u64| ScalingCell {
                algorithm: "multiple-bin".into(),
                dmax,
                clients: 65536,
                nodes: 131071,
                replicas: 2000,
                median_ns: 1_000,
                mean_ns: 1_000,
                samples: 1,
                stage_subsets: 0,
                stage_routed: 0,
                stage_pruned: 0,
                dp_node_visits: 0,
                dp_fallbacks: 0,
                commit_touched: 0,
                commit_skipped: 0,
                router_carry_merges: 0,
                router_carried_peak: 0,
                scope_cache_hits: 0,
                warm_seeds_used: 0,
                peak_alloc_bytes,
            };
            ScalingReport { quick: true, cells: vec![cell(true, peak), cell(false, 0)] }.to_json()
        };
        let dir = std::env::temp_dir().join(format!("rp-gate-peak-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let good = dir.join("good.json");
        let bad = dir.join("bad.json");
        let manifest = dir.join("gates.toml");
        std::fs::write(&base, peak_report(6_000_000_000)).unwrap();
        std::fs::write(&good, peak_report(6_500_000_000)).unwrap();
        std::fs::write(&bad, peak_report(9_000_000_000)).unwrap();
        std::fs::write(
            &manifest,
            "[[gate]]\n\
             name = \"mb-peak-65536\"\n\
             clients = 65536\n\
             metric = \"peak-alloc\"\n\
             variant = \"dmax\"\n",
        )
        .unwrap();
        let argv = |cur: &std::path::Path| {
            vec![
                "bench-gate".to_string(),
                "--current".into(),
                cur.to_str().unwrap().into(),
                "--baseline".into(),
                base.to_str().unwrap().into(),
                "--manifest".into(),
                manifest.to_str().unwrap().into(),
            ]
        };
        // +8% memory passes the default 0.30 budget; +50% fails. Only the
        // dmax cell is compared (variant), in bytes (metric) — the
        // unrecorded nod peak never even reaches the comparison.
        let ok = dispatch(&argv(&good)).unwrap();
        assert!(ok.contains("peak bytes"), "{ok}");
        assert!(!ok.contains("nod"), "{ok}");
        let err = dispatch(&argv(&bad)).unwrap_err();
        assert!(err.contains("perf gate failed"), "{err}");
        assert!(err.contains("1.50x"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gate_manifest_parser_rejects_typos() {
        assert!(parse_gate_manifest("").is_err(), "empty manifest");
        let err = parse_gate_manifest("clients = 5\n").unwrap_err();
        assert!(err.contains("before any [[gate]]"), "{err}");
        let err = parse_gate_manifest("[[gate]]\nname = \"x\"\nclient = 5\n").unwrap_err();
        assert!(err.contains("unknown gate key `client`"), "{err}");
        let err = parse_gate_manifest("[[gate]]\nname = \"x\"\n").unwrap_err();
        assert!(err.contains("missing `clients`"), "{err}");
        let err = parse_gate_manifest("[[gate]]\nclients = 5\n").unwrap_err();
        assert!(err.contains("missing `name`"), "{err}");
        let err = parse_gate_manifest("[[gate]]\nname = \"x\"\nclients = 5\nmetric = \"rss\"\n")
            .unwrap_err();
        assert!(err.contains("unknown metric `rss`"), "{err}");
        let err = parse_gate_manifest("[[gate]]\nname = \"x\"\nclients = 5\nvariant = \"all\"\n")
            .unwrap_err();
        assert!(err.contains("unknown variant `all`"), "{err}");
        let err = parse_gate_manifest("[[gate]]\nname = \"x\"\nclients = 5\ntolerance = \"ten\"\n")
            .unwrap_err();
        assert!(err.contains("bad tolerance `ten`"), "{err}");
        let gates = parse_gate_manifest("[[gate]]\nname = \"a\"\nclients = 256\n").unwrap();
        assert_eq!(gates.len(), 1);
        assert_eq!(gates[0].algorithm, "multiple-bin");
        assert_eq!(gates[0].max_regress, 0.30);
        assert_eq!(gates[0].tolerance, 0);
        assert_eq!(gates[0].metric, GateMetric::Median);
        assert_eq!(gates[0].variant, GateVariant::Both);
        let gates =
            parse_gate_manifest("[[gate]]\nname = \"a\"\nclients = 256\ntolerance = 2000000000\n")
                .unwrap();
        assert_eq!(gates[0].tolerance, 2_000_000_000);
        let gates = parse_gate_manifest(
            "[[gate]]\nname = \"a\"\nclients = 256\nmetric = \"peak-alloc\"\nvariant = \"nod\"\n",
        )
        .unwrap();
        assert_eq!(gates[0].metric, GateMetric::PeakAlloc);
        assert_eq!(gates[0].variant, GateVariant::Nod);
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run(&["help"]).unwrap().contains("usage"));
        assert!(run(&["frobnicate"]).is_err());
    }

    #[test]
    fn gen_solve_exact_validate_roundtrip_through_files() {
        let dir = std::env::temp_dir().join(format!("rp-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let inst = dir.join("inst.txt");
        let sol = dir.join("sol.txt");
        let inst_s = inst.to_str().unwrap();
        let sol_s = sol.to_str().unwrap();

        let out = run(&[
            "gen",
            "--kind",
            "binary",
            "--clients",
            "8",
            "--seed",
            "3",
            "--dmax-fraction",
            "0.8",
            "--out",
            inst_s,
        ])
        .unwrap();
        assert!(out.contains("wrote"));

        let out =
            run(&["solve", "--instance", inst_s, "--algorithm", "multiple-bin", "--out", sol_s])
                .unwrap();
        assert!(out.contains("replicas:"));
        assert!(!out.contains("stage stats"), "counters are opt-in");

        let out = run(&[
            "solve",
            "--instance",
            inst_s,
            "--algorithm",
            "multiple-bin",
            "--stage-stats",
            "--out",
            sol_s,
        ])
        .unwrap();
        assert!(out.contains("stage stats:"), "{out}");
        assert!(out.contains("subsets routed:"));
        assert!(out.contains("dp node visits:"));
        assert!(out.contains("commit volume touched:"));
        assert!(out.contains("commit volume skipped:"));
        assert!(out.contains("repairs: 0"));

        let out =
            run(&["validate", "--instance", inst_s, "--solution", sol_s, "--policy", "multiple"])
                .unwrap();
        assert!(out.starts_with("valid"));

        let out = run(&["exact", "--instance", inst_s, "--policy", "multiple"]).unwrap();
        assert!(out.contains("optimal replicas:"));

        let out =
            run(&["simulate", "--instance", inst_s, "--solution", sol_s, "--ticks", "10"]).unwrap();
        assert!(out.contains("availability: 1.0000"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gen_fig3_and_fig4() {
        let out = run(&["gen", "--kind", "fig3", "--m", "2", "--delta", "3"]).unwrap();
        assert!(out.contains("capacity"));
        let out = run(&["gen", "--kind", "fig4", "--m", "4"]).unwrap();
        assert!(out.contains("dmax none"));
    }

    #[test]
    fn experiment_quick_markdown_and_csv() {
        let md = run(&["experiment", "e2"]).unwrap();
        assert!(md.contains("### E2"));
        let csv = run(&["experiment", "e2", "--csv"]).unwrap();
        assert!(csv.lines().next().unwrap().starts_with("K,"));
        assert!(run(&["experiment", "e99"]).is_err());
    }

    #[test]
    fn parse_failure_and_burst_specs() {
        let f = parse_failure("3:10:20").unwrap();
        assert_eq!(f.server, NodeId(3));
        assert_eq!((f.from_tick, f.to_tick), (10, 20));
        assert!(parse_failure("3:10").is_err());
        let b = parse_burst("5:9:2.5").unwrap();
        assert!((b.factor - 2.5).abs() < 1e-9);
        assert!(parse_burst("oops").is_err());
    }

    #[test]
    fn solve_rejects_unknown_algorithm() {
        let err = run(&["solve", "--instance", "/nonexistent", "--algorithm", "magic"]);
        assert!(err.is_err());
    }

    #[test]
    fn solve_threads_matches_serial_output() {
        let dir = std::env::temp_dir().join(format!("rp-cli-threads-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let inst = dir.join("inst.txt");
        let inst_s = inst.to_str().unwrap();
        run(&[
            "gen",
            "--kind",
            "binary",
            "--clients",
            "64",
            "--seed",
            "11",
            "--dmax-fraction",
            "0.6",
            "--out",
            inst_s,
        ])
        .unwrap();

        for algorithm in ["single-gen", "single-nod", "multiple-bin"] {
            let serial = run(&["solve", "--instance", inst_s, "--algorithm", algorithm]).unwrap();
            for threads in ["1", "4"] {
                let par = run(&[
                    "solve",
                    "--instance",
                    inst_s,
                    "--algorithm",
                    algorithm,
                    "--threads",
                    threads,
                ])
                .unwrap();
                assert_eq!(par, serial, "{algorithm} diverged at --threads {threads}");
            }
        }

        let err = run(&[
            "solve",
            "--instance",
            inst_s,
            "--algorithm",
            "multiple-greedy",
            "--threads",
            "4",
        ]);
        assert!(err.is_err(), "baselines have no parallel path");
        let err =
            run(&["solve", "--instance", inst_s, "--algorithm", "single-gen", "--threads", "0"]);
        assert!(err.is_err(), "--threads 0 is rejected");
        std::fs::remove_dir_all(&dir).ok();
    }
}
