//! `rp` — command-line interface for the replica placement reproduction.
//!
//! ```text
//! rp gen --kind binary --clients 32 --capacity-factor 3 --dmax-fraction 0.7 --seed 1 --out inst.txt
//! rp solve --instance inst.txt --algorithm single-gen
//! rp exact --instance inst.txt --policy multiple
//! rp validate --instance inst.txt --solution sol.txt --policy single
//! rp simulate --instance inst.txt --solution sol.txt --ticks 1000 --fail 3:100:200 --burst 50:80:2.0
//! rp experiment e1 --full --csv
//! rp serve --instance inst.txt --assert-p99-us 2000000 < stream.txt
//! ```

mod args;
mod commands;
mod serve;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: {err}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
