//! Exact solver for the Single policy.
//!
//! Finds a replica placement with the minimum number of servers such that
//! every client is assigned to exactly one server on its root path, within
//! `dmax` and without exceeding any server's capacity.
//!
//! The search is an iterative-deepening branch-and-bound over whole-client
//! assignments: for a replica budget `k = LB, LB+1, …` it assigns clients one
//! at a time (most constrained first) to an already-open eligible server with
//! enough residual capacity, or to a newly opened one while the budget
//! allows. The first budget that succeeds is optimal.

use rp_tree::{Instance, NodeId, Requests, Solution};
use std::collections::HashMap;

/// Finds an optimal Single-policy solution, or `None` if the instance is
/// infeasible (some client issues more than `W` requests — splitting is not
/// allowed under this policy).
pub fn solve(instance: &Instance) -> Option<Solution> {
    let upper =
        instance.tree().clients().iter().filter(|c| instance.tree().requests(**c) > 0).count()
            as u64;
    if upper == 0 {
        return Some(Solution::new());
    }
    let lb = instance.request_volume_lower_bound();
    for budget in lb..=upper {
        if let Some(sol) = solve_within(instance, budget) {
            return Some(sol);
        }
    }
    None
}

/// Finds a feasible Single-policy solution using at most `budget` replicas,
/// or `None` if none exists within that budget.
pub fn solve_within(instance: &Instance, budget: u64) -> Option<Solution> {
    let tree = instance.tree();
    let w = instance.capacity();

    // Clients that actually need serving, with their eligible server lists.
    let mut clients: Vec<(NodeId, Requests, Vec<NodeId>)> = Vec::new();
    for &c in tree.clients() {
        let r = tree.requests(c);
        if r == 0 {
            continue;
        }
        if r > w {
            return None; // cannot be served by a single server
        }
        let eligible = instance.eligible_servers(c);
        debug_assert!(!eligible.is_empty(), "a client is always eligible to serve itself");
        clients.push((c, r, eligible));
    }
    if clients.is_empty() {
        return Some(Solution::new());
    }
    // Most-constrained first: fewer eligible servers, then more requests.
    clients.sort_by(|a, b| a.2.len().cmp(&b.2.len()).then(b.1.cmp(&a.1)));

    let total: u128 = clients.iter().map(|c| c.1 as u128).sum();
    let mut state = SearchState {
        w,
        budget: budget as usize,
        open: HashMap::new(),
        assignment: Vec::new(),
        remaining: total,
    };
    if search(&clients, 0, &mut state) {
        let mut sol = Solution::new();
        for &(client, server, amount) in &state.assignment {
            sol.assign(client, server, amount);
        }
        Some(sol)
    } else {
        None
    }
}

struct SearchState {
    w: Requests,
    budget: usize,
    /// Open servers → load already assigned.
    open: HashMap<NodeId, Requests>,
    assignment: Vec<(NodeId, NodeId, Requests)>,
    /// Requests of clients not yet assigned.
    remaining: u128,
}

fn search(
    clients: &[(NodeId, Requests, Vec<NodeId>)],
    idx: usize,
    state: &mut SearchState,
) -> bool {
    if idx == clients.len() {
        return true;
    }
    // Prune: even filling every open server to capacity and opening all
    // remaining budget cannot cover the remaining requests.
    let open_residual: u128 = state.open.values().map(|&used| (state.w - used) as u128).sum();
    let openable = (state.budget - state.open.len()) as u128 * state.w as u128;
    if state.remaining > open_residual + openable {
        return false;
    }

    let (client, requests, ref eligible) = clients[idx];

    // Try servers that are already open first (no budget cost), then new ones.
    for &server in eligible {
        if let Some(&used) = state.open.get(&server) {
            if used + requests <= state.w {
                *state.open.get_mut(&server).unwrap() += requests;
                state.assignment.push((client, server, requests));
                state.remaining -= requests as u128;
                if search(clients, idx + 1, state) {
                    return true;
                }
                state.remaining += requests as u128;
                state.assignment.pop();
                *state.open.get_mut(&server).unwrap() -= requests;
            }
        }
    }
    if state.open.len() < state.budget {
        for &server in eligible {
            if state.open.contains_key(&server) {
                continue;
            }
            state.open.insert(server, requests);
            state.assignment.push((client, server, requests));
            state.remaining -= requests as u128;
            if search(clients, idx + 1, state) {
                return true;
            }
            state.remaining += requests as u128;
            state.assignment.pop();
            state.open.remove(&server);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_tree::{validate, Policy, TreeBuilder};

    fn check(instance: &Instance, expected: Option<u64>) {
        let sol = solve(instance);
        match (sol, expected) {
            (Some(s), Some(k)) => {
                let stats = validate(instance, Policy::Single, &s).expect("exact must be feasible");
                assert_eq!(stats.replica_count as u64, k);
            }
            (None, None) => {}
            (got, want) => panic!("expected {want:?}, got {:?}", got.map(|s| s.replica_count())),
        }
    }

    #[test]
    fn single_client_needs_one_server() {
        let mut b = TreeBuilder::new();
        let root = b.root();
        b.add_client(root, 1, 5);
        let inst = Instance::new(b.freeze().unwrap(), 10, None).unwrap();
        check(&inst, Some(1));
    }

    #[test]
    fn star_packs_like_bin_packing() {
        // Items 6, 5, 4, 3, 2 with capacity 10 → optimal 2 bins (6+4, 5+3+2).
        let mut b = TreeBuilder::new();
        let root = b.root();
        for r in [6, 5, 4, 3, 2] {
            b.add_client(root, 1, r);
        }
        // The root is the only shared ancestor: it serves a heaviest-count
        // subset of total at most 10 (e.g. 5+3+2), and the remaining clients
        // must self-serve → 1 (root) + 2 = 3 replicas.
        let inst = Instance::new(b.freeze().unwrap(), 10, None).unwrap();
        check(&inst, Some(3));
    }

    #[test]
    fn two_internal_groups() {
        // Two internal nodes each with clients {6, 4} → one server each.
        let mut b = TreeBuilder::new();
        let root = b.root();
        for _ in 0..2 {
            let n = b.add_internal(root, 1);
            b.add_client(n, 1, 6);
            b.add_client(n, 1, 4);
        }
        let inst = Instance::new(b.freeze().unwrap(), 10, None).unwrap();
        check(&inst, Some(2));
    }

    #[test]
    fn distance_constraint_forces_more_servers() {
        // A chain where the root is too far from the client.
        let mut b = TreeBuilder::new();
        let root = b.root();
        let n1 = b.add_internal(root, 5);
        b.add_client(n1, 5, 3);
        b.add_client(root, 1, 3);
        let tree = b.freeze().unwrap();
        // dmax 5: the deep client can only use n1 or itself; the shallow one
        // can use the root. Optimum 2.
        let inst = Instance::new(tree.clone(), 10, Some(5)).unwrap();
        check(&inst, Some(2));
        // Without the constraint the root serves both.
        let inst = Instance::new(tree, 10, None).unwrap();
        check(&inst, Some(1));
    }

    #[test]
    fn infeasible_when_a_client_exceeds_capacity() {
        let mut b = TreeBuilder::new();
        let root = b.root();
        b.add_client(root, 1, 15);
        let inst = Instance::new(b.freeze().unwrap(), 10, None).unwrap();
        check(&inst, None);
    }

    #[test]
    fn zero_request_clients_are_free() {
        let mut b = TreeBuilder::new();
        let root = b.root();
        b.add_client(root, 1, 0);
        b.add_client(root, 1, 0);
        let inst = Instance::new(b.freeze().unwrap(), 10, None).unwrap();
        check(&inst, Some(0));
    }

    #[test]
    fn solve_within_respects_budget() {
        let mut b = TreeBuilder::new();
        let root = b.root();
        for r in [6, 6, 6] {
            b.add_client(root, 1, r);
        }
        let inst = Instance::new(b.freeze().unwrap(), 10, None).unwrap();
        // optimum is 3 (no two clients fit together except at root, which
        // holds only one pair… actually 6+6 > 10, so every client is alone).
        assert!(solve_within(&inst, 2).is_none());
        assert!(solve_within(&inst, 3).is_some());
        check(&inst, Some(3));
    }

    #[test]
    fn matches_brute_force_on_small_random_trees() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use rp_instances::random::{random_kary_tree, wrap_instance};
        use rp_instances::{EdgeDist, RequestDist};
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..10 {
            let tree = random_kary_tree(
                6,
                3,
                &EdgeDist::Uniform { lo: 1, hi: 3 },
                &RequestDist::Uniform { lo: 1, hi: 8 },
                &mut rng,
            );
            let inst = wrap_instance(tree, 2.5, Some(0.8));
            let fast = solve(&inst).map(|s| s.replica_count() as u64);
            let brute = brute_force_single(&inst);
            assert_eq!(fast, brute, "trial {trial}");
        }
    }

    /// Reference brute force: enumerate every assignment of clients to
    /// eligible servers (exponential, tiny instances only).
    fn brute_force_single(instance: &Instance) -> Option<u64> {
        let tree = instance.tree();
        let clients: Vec<NodeId> =
            tree.clients().iter().copied().filter(|c| tree.requests(*c) > 0).collect();
        let eligible: Vec<Vec<NodeId>> =
            clients.iter().map(|c| instance.eligible_servers(*c)).collect();
        let mut best: Option<u64> = None;
        let mut choice = vec![0usize; clients.len()];
        loop {
            // Evaluate current choice.
            let mut loads: HashMap<NodeId, u64> = HashMap::new();
            let mut ok = true;
            for (i, &c) in clients.iter().enumerate() {
                let server = eligible[i][choice[i]];
                *loads.entry(server).or_insert(0) += tree.requests(c);
            }
            for load in loads.values() {
                if *load > instance.capacity() {
                    ok = false;
                }
            }
            if ok {
                let count = loads.len() as u64;
                best = Some(best.map_or(count, |b: u64| b.min(count)));
            }
            // Advance odometer.
            let mut i = 0;
            loop {
                if i == clients.len() {
                    return best;
                }
                choice[i] += 1;
                if choice[i] < eligible[i].len() {
                    break;
                }
                choice[i] = 0;
                i += 1;
            }
        }
    }
}
