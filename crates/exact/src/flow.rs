//! A small Dinic max-flow implementation.
//!
//! Used as the feasibility oracle of the exact Multiple-policy solver: with a
//! fixed replica set, deciding whether every client's requests can be split
//! over its eligible servers without exceeding any capacity is a bipartite
//! transportation problem, i.e. a max-flow instance.
//!
//! The implementation is deliberately simple (adjacency lists of edge indices,
//! BFS level graph, DFS blocking flow) — networks built by the solver have at
//! most a few hundred edges.

/// Sentinel for an effectively unbounded edge capacity.
pub const INF: u64 = u64::MAX / 4;

#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    cap: u64,
    /// Index of the reverse edge in `graph[to]`.
    rev: usize,
}

/// A flow network under construction / being solved.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    graph: Vec<Vec<Edge>>,
    /// (from, index in graph[from]) of every forward edge, in insertion order.
    edge_handles: Vec<(usize, usize)>,
}

/// Handle to an edge added with [`FlowNetwork::add_edge`], usable to query
/// the flow pushed through it after [`FlowNetwork::max_flow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeHandle(usize);

impl FlowNetwork {
    /// Creates a network with `nodes` vertices and no edges.
    pub fn new(nodes: usize) -> Self {
        FlowNetwork { graph: vec![Vec::new(); nodes], edge_handles: Vec::new() }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Whether the network has no vertices.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Adds a directed edge `from → to` with the given capacity and returns a
    /// handle to query its final flow.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: u64) -> EdgeHandle {
        assert!(from < self.graph.len() && to < self.graph.len(), "edge endpoints out of range");
        assert_ne!(from, to, "self-loops are not supported");
        let from_idx = self.graph[from].len();
        let to_idx = self.graph[to].len();
        self.graph[from].push(Edge { to, cap, rev: to_idx });
        self.graph[to].push(Edge { to: from, cap: 0, rev: from_idx });
        self.edge_handles.push((from, from_idx));
        EdgeHandle(self.edge_handles.len() - 1)
    }

    /// Original capacity minus residual capacity of a forward edge, i.e. the
    /// flow currently pushed through it.
    pub fn flow_on(&self, handle: EdgeHandle) -> u64 {
        let (from, idx) = self.edge_handles[handle.0];
        let edge = &self.graph[from][idx];
        // Flow equals the capacity accumulated on the reverse edge.
        self.graph[edge.to][edge.rev].cap
    }

    /// Computes the maximum flow from `source` to `sink` (Dinic's algorithm).
    pub fn max_flow(&mut self, source: usize, sink: usize) -> u64 {
        assert!(source < self.graph.len() && sink < self.graph.len());
        assert_ne!(source, sink);
        let n = self.graph.len();
        let mut total = 0u64;
        loop {
            // BFS: build level graph.
            let mut level = vec![usize::MAX; n];
            level[source] = 0;
            let mut queue = std::collections::VecDeque::from([source]);
            while let Some(v) = queue.pop_front() {
                for e in &self.graph[v] {
                    if e.cap > 0 && level[e.to] == usize::MAX {
                        level[e.to] = level[v] + 1;
                        queue.push_back(e.to);
                    }
                }
            }
            if level[sink] == usize::MAX {
                break;
            }
            // DFS blocking flow with iteration pointers.
            let mut iter = vec![0usize; n];
            loop {
                let pushed = self.dfs(source, sink, INF, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                total = total.saturating_add(pushed);
            }
        }
        total
    }

    fn dfs(
        &mut self,
        v: usize,
        sink: usize,
        limit: u64,
        level: &[usize],
        iter: &mut [usize],
    ) -> u64 {
        if v == sink {
            return limit;
        }
        while iter[v] < self.graph[v].len() {
            let (to, cap, rev) = {
                let e = &self.graph[v][iter[v]];
                (e.to, e.cap, e.rev)
            };
            if cap > 0 && level[v] + 1 == level[to] {
                let pushed = self.dfs(to, sink, limit.min(cap), level, iter);
                if pushed > 0 {
                    self.graph[v][iter[v]].cap -= pushed;
                    self.graph[to][rev].cap += pushed;
                    return pushed;
                }
            }
            iter[v] += 1;
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, 7);
        assert_eq!(net.max_flow(0, 1), 7);
        assert_eq!(net.flow_on(e), 7);
    }

    #[test]
    fn series_edges_bottleneck() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 10);
        let e = net.add_edge(1, 2, 4);
        assert_eq!(net.max_flow(0, 2), 4);
        assert_eq!(net.flow_on(e), 4);
    }

    #[test]
    fn parallel_paths_add_up() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3);
        net.add_edge(0, 2, 5);
        net.add_edge(1, 3, 3);
        net.add_edge(2, 3, 5);
        assert_eq!(net.max_flow(0, 3), 8);
    }

    #[test]
    fn classic_augmenting_path_crossover() {
        // The classic example that needs a residual (backwards) step.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1);
        net.add_edge(0, 2, 1);
        net.add_edge(1, 2, 1);
        net.add_edge(1, 3, 1);
        net.add_edge(2, 3, 1);
        assert_eq!(net.max_flow(0, 3), 2);
    }

    #[test]
    fn disconnected_sink_gives_zero() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5);
        assert_eq!(net.max_flow(0, 2), 0);
    }

    #[test]
    fn bipartite_transportation_instance() {
        // 2 supplies (4 and 6), 3 demands with capacities 5, 3, 2; the first
        // supply can reach only the first two demands.
        // source 0, supplies 1-2, demands 3-5, sink 6
        let mut net = FlowNetwork::new(7);
        net.add_edge(0, 1, 4);
        net.add_edge(0, 2, 6);
        net.add_edge(1, 3, INF);
        net.add_edge(1, 4, INF);
        net.add_edge(2, 3, INF);
        net.add_edge(2, 4, INF);
        net.add_edge(2, 5, INF);
        net.add_edge(3, 6, 5);
        net.add_edge(4, 6, 3);
        net.add_edge(5, 6, 2);
        assert_eq!(net.max_flow(0, 6), 10);
    }

    #[test]
    fn flow_conservation_on_handles() {
        let mut net = FlowNetwork::new(5);
        let a = net.add_edge(0, 1, 9);
        let b = net.add_edge(0, 2, 9);
        let c = net.add_edge(1, 3, 6);
        let d = net.add_edge(2, 3, 2);
        let e = net.add_edge(3, 4, 7);
        let value = net.max_flow(0, 4);
        assert_eq!(value, 7);
        assert_eq!(net.flow_on(e), 7);
        assert_eq!(net.flow_on(a) + net.flow_on(b), 7);
        assert_eq!(net.flow_on(c) + net.flow_on(d), 7);
        assert!(net.flow_on(c) <= 6 && net.flow_on(d) <= 2);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loops_rejected() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(1, 1, 1);
    }
}
