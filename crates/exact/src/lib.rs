//! # rp-exact — exact optimal solvers for replica placement
//!
//! The approximation guarantees of the paper's algorithms (Theorems 3, 4 and
//! 6) are only meaningful against the true optimum. This crate computes that
//! optimum exactly on small instances, with implementations that are entirely
//! independent of the heuristics in `rp-core`:
//!
//! * [`single`] — exact solver for the **Single** policy: iterative-deepening
//!   branch-and-bound over whole-client assignments;
//! * [`multiple`] — exact solver for the **Multiple** policy: replica sets are
//!   enumerated by increasing cardinality, and feasibility of a fixed set is
//!   decided with a max-flow computation;
//! * [`flow`] — the Dinic max-flow implementation used by the Multiple
//!   feasibility check (a small, self-contained network-flow substrate).
//!
//! Both solvers are exponential in the worst case (the problems are NP-hard,
//! Theorems 1 and 5); they are intended for instances of a few dozen nodes,
//! which is all the optimality experiments need.
//!
//! ```
//! use rp_tree::{Instance, Policy, TreeBuilder};
//! use rp_exact::optimal_replica_count;
//!
//! let mut b = TreeBuilder::new();
//! let root = b.root();
//! let c1 = b.add_client(root, 1, 4);
//! let c2 = b.add_client(root, 1, 5);
//! let _ = (c1, c2);
//! let inst = Instance::new(b.freeze().unwrap(), 10, None).unwrap();
//! assert_eq!(optimal_replica_count(&inst, Policy::Single), Some(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flow;
pub mod multiple;
pub mod single;

use rp_tree::{Instance, Policy, Solution};

/// Upper bound on the number of tree nodes accepted by the exact solvers.
///
/// Beyond this size the search space makes exhaustive optimisation
/// impractical; callers should fall back to lower bounds instead.
pub const MAX_EXACT_NODES: usize = 64;

/// Computes an optimal solution for `instance` under `policy`.
///
/// Returns `None` when the instance is infeasible under the policy (for the
/// Single policy this happens when some client issues more than `W`
/// requests; for Multiple when even splitting over the whole eligible path
/// cannot cover a client).
///
/// # Panics
///
/// Panics if the instance has more than [`MAX_EXACT_NODES`] nodes.
pub fn optimal_solution(instance: &Instance, policy: Policy) -> Option<Solution> {
    assert!(
        instance.tree().len() <= MAX_EXACT_NODES,
        "exact solver limited to {MAX_EXACT_NODES} nodes, got {}",
        instance.tree().len()
    );
    match policy {
        Policy::Single => single::solve(instance),
        Policy::Multiple => multiple::solve(instance),
    }
}

/// Convenience wrapper returning only the optimal number of replicas.
pub fn optimal_replica_count(instance: &Instance, policy: Policy) -> Option<u64> {
    optimal_solution(instance, policy).map(|s| s.replica_count() as u64)
}

/// Checks whether `instance` admits *any* feasible solution with at most
/// `budget` replicas under `policy` (used by the NP-hardness reduction
/// experiments, which only need the YES/NO answer at a threshold).
pub fn feasible_within(instance: &Instance, policy: Policy, budget: u64) -> bool {
    match policy {
        Policy::Single => single::solve_within(instance, budget).is_some(),
        Policy::Multiple => multiple::solve_within(instance, budget).is_some(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_tree::TreeBuilder;

    #[test]
    #[should_panic(expected = "exact solver limited")]
    fn oversized_instances_are_rejected() {
        let mut b = TreeBuilder::new();
        let root = b.root();
        for _ in 0..80 {
            b.add_client(root, 1, 1);
        }
        let inst = Instance::new(b.freeze().unwrap(), 10, None).unwrap();
        let _ = optimal_solution(&inst, Policy::Single);
    }
}
