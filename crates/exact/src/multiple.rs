//! Exact solver for the Multiple policy.
//!
//! Replica sets are enumerated by increasing cardinality over the *useful*
//! candidate nodes (nodes that can serve at least one client within `dmax`).
//! For a fixed replica set, feasibility — can every client's requests be
//! split over its eligible replicas without exceeding any capacity? — is a
//! bipartite transportation problem solved with the Dinic max-flow
//! implementation of [`crate::flow`]. The first cardinality admitting a
//! feasible set is optimal.

use crate::flow::{FlowNetwork, INF};
use rp_tree::{Instance, NodeId, Solution};
use std::collections::HashMap;

/// Finds an optimal Multiple-policy solution, or `None` if the instance is
/// infeasible (some client cannot be fully served even by opening every
/// eligible server on its path).
pub fn solve(instance: &Instance) -> Option<Solution> {
    let prepared = Prepared::build(instance)?;
    if prepared.clients.is_empty() {
        return Some(Solution::new());
    }
    let lb = instance.request_volume_lower_bound().max(1);
    let ub = prepared.candidates.len() as u64;
    for budget in lb..=ub {
        if let Some(sol) = prepared.search_cardinality(budget as usize) {
            return Some(sol);
        }
    }
    None
}

/// Finds a feasible Multiple-policy solution with at most `budget` replicas,
/// or `None` if none exists within that budget.
pub fn solve_within(instance: &Instance, budget: u64) -> Option<Solution> {
    let prepared = Prepared::build(instance)?;
    if prepared.clients.is_empty() {
        return Some(Solution::new());
    }
    let lb = instance.request_volume_lower_bound().max(1);
    let ub = (prepared.candidates.len() as u64).min(budget);
    for k in lb..=ub {
        if let Some(sol) = prepared.search_cardinality(k as usize) {
            return Some(sol);
        }
    }
    None
}

/// Preprocessed view of an instance: clients with positive requests, the
/// candidate replica locations, and the client ↔ candidate eligibility lists.
struct Prepared<'a> {
    instance: &'a Instance,
    /// Clients with at least one request.
    clients: Vec<NodeId>,
    /// Requests of each client (parallel to `clients`).
    demands: Vec<u64>,
    /// Candidate servers (serve at least one client within `dmax`).
    candidates: Vec<NodeId>,
    /// For each client index, the indices (into `candidates`) it can use.
    eligible: Vec<Vec<usize>>,
    /// Candidate indices that must be open in every feasible solution: a
    /// client needing `⌈r_i / W⌉` servers with exactly that many eligible
    /// locations forces all of them (this is what makes gadget instances with
    /// a huge client — Fig. 5 — tractable for the enumeration).
    forced: Vec<usize>,
}

impl<'a> Prepared<'a> {
    /// Builds the preprocessed view; returns `None` if some client cannot be
    /// fully served even with every eligible server open.
    fn build(instance: &'a Instance) -> Option<Self> {
        let tree = instance.tree();
        let mut clients = Vec::new();
        let mut demands = Vec::new();
        let mut candidate_index: HashMap<NodeId, usize> = HashMap::new();
        let mut candidates: Vec<NodeId> = Vec::new();
        let mut eligible: Vec<Vec<usize>> = Vec::new();

        for &c in tree.clients() {
            let r = tree.requests(c);
            if r == 0 {
                continue;
            }
            let servers = instance.eligible_servers(c);
            // Feasibility of this client in isolation: its whole path open.
            let path_capacity = (servers.len() as u128) * instance.capacity() as u128;
            if (r as u128) > path_capacity {
                return None;
            }
            let mut elig = Vec::with_capacity(servers.len());
            for s in servers {
                let idx = *candidate_index.entry(s).or_insert_with(|| {
                    candidates.push(s);
                    candidates.len() - 1
                });
                elig.push(idx);
            }
            clients.push(c);
            demands.push(r);
            eligible.push(elig);
        }
        // Forced candidates: a client whose request volume needs every one of
        // its eligible servers pins them all.
        let w = instance.capacity();
        let mut forced: Vec<usize> = Vec::new();
        for (ci, elig) in eligible.iter().enumerate() {
            let required = demands[ci].div_ceil(w) as usize;
            if required == elig.len() {
                forced.extend(elig.iter().copied());
            }
        }
        forced.sort_unstable();
        forced.dedup();
        Some(Prepared { instance, clients, demands, candidates, eligible, forced })
    }

    /// Searches for a feasible replica set of exactly `k` candidates.
    fn search_cardinality(&self, k: usize) -> Option<Solution> {
        if k > self.candidates.len() || k < self.forced.len() {
            return None;
        }
        let free: Vec<usize> =
            (0..self.candidates.len()).filter(|i| !self.forced.contains(i)).collect();
        let remaining = k - self.forced.len();
        let mut chosen: Vec<usize> = self.forced.clone();
        self.enumerate(&free, 0, remaining, &mut chosen)
    }

    fn enumerate(
        &self,
        free: &[usize],
        start: usize,
        remaining: usize,
        chosen: &mut Vec<usize>,
    ) -> Option<Solution> {
        if remaining == 0 {
            return self.check_feasible(chosen);
        }
        if free.len() - start < remaining {
            return None;
        }
        for pos in start..free.len() {
            chosen.push(free[pos]);
            if let Some(sol) = self.enumerate(free, pos + 1, remaining - 1, chosen) {
                return Some(sol);
            }
            chosen.pop();
        }
        None
    }

    /// Max-flow feasibility for a fixed replica set, returning the induced
    /// assignment when feasible.
    fn check_feasible(&self, chosen: &[usize]) -> Option<Solution> {
        let w = self.instance.capacity();
        let chosen_set: Vec<bool> = {
            let mut v = vec![false; self.candidates.len()];
            for &i in chosen {
                v[i] = true;
            }
            v
        };
        // Cheap necessary conditions before building the flow network:
        // every client needs at least one open eligible server, and enough
        // aggregate eligible capacity.
        for (ci, elig) in self.eligible.iter().enumerate() {
            let open: u64 = elig.iter().filter(|&&i| chosen_set[i]).count() as u64;
            if open == 0 || open.saturating_mul(w) < self.demands[ci] {
                return None;
            }
        }

        // Nodes: 0 = source, 1..=clients = client nodes, then chosen servers, then sink.
        let n_clients = self.clients.len();
        let n_servers = chosen.len();
        let source = 0usize;
        let sink = 1 + n_clients + n_servers;
        let mut net = FlowNetwork::new(sink + 1);
        let server_offset = 1 + n_clients;
        let chosen_pos: HashMap<usize, usize> =
            chosen.iter().enumerate().map(|(pos, &cand)| (cand, pos)).collect();

        let mut demand_total: u64 = 0;
        let mut client_server_edges = Vec::new();
        for ci in 0..n_clients {
            net.add_edge(source, 1 + ci, self.demands[ci]);
            demand_total = demand_total.saturating_add(self.demands[ci]);
            for &cand in &self.eligible[ci] {
                if let Some(&pos) = chosen_pos.get(&cand) {
                    let handle = net.add_edge(1 + ci, server_offset + pos, INF);
                    client_server_edges.push((ci, cand, handle));
                }
            }
        }
        for pos in 0..n_servers {
            net.add_edge(server_offset + pos, sink, w);
        }
        let flow = net.max_flow(source, sink);
        if flow < demand_total {
            return None;
        }
        let mut sol = Solution::new();
        for (ci, cand, handle) in client_server_edges {
            let amount = net.flow_on(handle);
            if amount > 0 {
                sol.assign(self.clients[ci], self.candidates[cand], amount);
            }
        }
        Some(sol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_tree::{validate, Policy, TreeBuilder};

    fn check(instance: &Instance, expected: Option<u64>) {
        let sol = solve(instance);
        match (sol, expected) {
            (Some(s), Some(k)) => {
                let stats =
                    validate(instance, Policy::Multiple, &s).expect("exact must be feasible");
                assert_eq!(stats.replica_count as u64, k);
            }
            (None, None) => {}
            (got, want) => panic!("expected {want:?}, got {:?}", got.map(|s| s.replica_count())),
        }
    }

    #[test]
    fn splitting_beats_single_policy() {
        // Two clients of 6 under the root, W = 10: Multiple can split one
        // client between the root and itself? No — a client's servers must be
        // on its own path; the root plus one client replica suffices:
        // root serves 6 + 4, the second client serves its remaining 2 → 2.
        let mut b = TreeBuilder::new();
        let root = b.root();
        b.add_client(root, 1, 6);
        b.add_client(root, 1, 6);
        let inst = Instance::new(b.freeze().unwrap(), 10, None).unwrap();
        check(&inst, Some(2));
        // Single policy on the same instance also needs 2, but via whole
        // assignments (root + one client).
        assert_eq!(crate::single::solve(&inst).unwrap().replica_count(), 2);
    }

    #[test]
    fn splitting_required_when_client_exceeds_capacity() {
        // One client with 25 requests, W = 10: needs 3 servers on its path.
        let mut b = TreeBuilder::new();
        let root = b.root();
        let n1 = b.add_internal(root, 1);
        b.add_client(n1, 1, 25);
        let inst = Instance::new(b.freeze().unwrap(), 10, None).unwrap();
        check(&inst, Some(3));
        // The Single policy is infeasible here.
        assert!(crate::single::solve(&inst).is_none());
    }

    #[test]
    fn infeasible_when_path_is_too_short() {
        // Client with 25 requests but only itself and the root eligible → 20 < 25.
        let mut b = TreeBuilder::new();
        let root = b.root();
        b.add_client(root, 1, 25);
        let inst = Instance::new(b.freeze().unwrap(), 10, None).unwrap();
        check(&inst, None);
    }

    #[test]
    fn distance_constraints_restrict_candidates() {
        let mut b = TreeBuilder::new();
        let root = b.root();
        let n1 = b.add_internal(root, 4);
        b.add_client(n1, 4, 12);
        let tree = b.freeze().unwrap();
        // dmax = 4: only the client itself and n1 are usable → 2 servers.
        let inst = Instance::new(tree.clone(), 10, Some(4)).unwrap();
        check(&inst, Some(2));
        // dmax = 8: the root becomes usable but 2 servers are still optimal.
        let inst = Instance::new(tree.clone(), 10, Some(8)).unwrap();
        check(&inst, Some(2));
        // dmax = 3: even the parent is out of reach and 12 > W locally.
        let inst = Instance::new(tree, 10, Some(3)).unwrap();
        check(&inst, None);
    }

    #[test]
    fn volume_bound_is_tight_on_balanced_instances() {
        // 4 clients of 5 under one internal node, W = 10 → 2 replicas suffice
        // (the internal node and the root absorb 10 each).
        let mut b = TreeBuilder::new();
        let root = b.root();
        let n1 = b.add_internal(root, 1);
        for _ in 0..4 {
            b.add_client(n1, 1, 5);
        }
        let inst = Instance::new(b.freeze().unwrap(), 10, None).unwrap();
        check(&inst, Some(2));
    }

    #[test]
    fn zero_request_instance_needs_no_replicas() {
        let mut b = TreeBuilder::new();
        let root = b.root();
        b.add_client(root, 1, 0);
        let inst = Instance::new(b.freeze().unwrap(), 10, None).unwrap();
        check(&inst, Some(0));
    }

    #[test]
    fn solve_within_budget_bounds() {
        let mut b = TreeBuilder::new();
        let root = b.root();
        let n1 = b.add_internal(root, 1);
        for _ in 0..5 {
            b.add_client(n1, 1, 4);
        }
        // 20 requests, W = 7 → volume bound says 3, but a client replica can
        // only absorb its own 4 requests: n1 + root + one client = 18 < 20,
        // so the optimum is 4 (n1, root and two client replicas).
        let inst = Instance::new(b.freeze().unwrap(), 7, None).unwrap();
        assert!(solve_within(&inst, 2).is_none());
        assert!(solve_within(&inst, 3).is_none());
        let sol = solve_within(&inst, 4).expect("4 replicas suffice");
        let stats = validate(&inst, Policy::Multiple, &sol).unwrap();
        assert_eq!(stats.replica_count, 4);
    }

    #[test]
    fn multiple_never_needs_more_than_single() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use rp_instances::random::{random_binary_tree, wrap_instance};
        use rp_instances::{EdgeDist, RequestDist};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..8 {
            let tree = random_binary_tree(
                6,
                &EdgeDist::Uniform { lo: 1, hi: 2 },
                &RequestDist::Uniform { lo: 1, hi: 9 },
                &mut rng,
            );
            let inst = wrap_instance(tree, 2.0, Some(0.7));
            let single = crate::single::solve(&inst).map(|s| s.replica_count());
            let multiple = solve(&inst).map(|s| s.replica_count());
            let (Some(s), Some(m)) = (single, multiple) else {
                panic!("both policies should be feasible when r_i ≤ W");
            };
            assert!(m <= s, "Multiple ({m}) must never need more replicas than Single ({s})");
        }
    }
}
