//! # rp-sim — request-serving simulator for replica placements
//!
//! The paper motivates replica placement with hierarchical content-delivery
//! platforms (electronic content, ISP, Video-on-Demand — Section 1). This
//! crate closes the loop by *running* a placement: it replays per-time-unit
//! request traffic over the distribution tree and a chosen [`Solution`],
//! measuring what the static optimisation promised:
//!
//! * per-replica load and utilisation over time,
//! * traffic carried by every tree edge,
//! * request latency (client→server distance) distribution,
//! * behaviour under overload bursts and replica failures (requests are
//!   re-routed to surviving replicas on the client's path with spare
//!   capacity, or dropped).
//!
//! The simulator is deterministic: given the same instance, solution and
//! [`SimConfig`], it produces the same [`SimReport`].
//!
//! ```
//! use rp_tree::{Instance, TreeBuilder, Solution};
//! use rp_sim::{simulate, SimConfig};
//!
//! let mut b = TreeBuilder::new();
//! let root = b.root();
//! let c = b.add_client(root, 2, 5);
//! let inst = Instance::new(b.freeze().unwrap(), 10, None).unwrap();
//! let mut sol = Solution::new();
//! sol.assign(c, root, 5);
//! let report = simulate(&inst, &sol, &SimConfig::new(100));
//! assert_eq!(report.issued, 500);
//! assert_eq!(report.dropped, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

pub use report::{EdgeTraffic, ReplicaStats, SimReport};

use rp_tree::{Instance, NodeId, Requests, Solution};
use std::collections::BTreeMap;

/// A replica outage: the server is unavailable during `[from_tick, to_tick)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Failure {
    /// The failed replica.
    pub server: NodeId,
    /// First tick (inclusive) of the outage.
    pub from_tick: u64,
    /// First tick after the outage (exclusive).
    pub to_tick: u64,
}

impl Failure {
    /// Whether the server is down at `tick`.
    pub fn is_down(&self, tick: u64) -> bool {
        (self.from_tick..self.to_tick).contains(&tick)
    }
}

/// A demand burst: every client's request rate is multiplied by `factor`
/// during `[from_tick, to_tick)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burst {
    /// First tick (inclusive) of the burst.
    pub from_tick: u64,
    /// First tick after the burst (exclusive).
    pub to_tick: u64,
    /// Multiplicative factor applied to each client's request rate.
    pub factor: f64,
}

/// Simulation configuration.
#[derive(Debug, Clone, Default)]
pub struct SimConfig {
    /// Number of time units to simulate.
    pub ticks: u64,
    /// Optional demand burst.
    pub burst: Option<Burst>,
    /// Replica outages to inject.
    pub failures: Vec<Failure>,
}

impl SimConfig {
    /// A plain configuration: `ticks` time units, no bursts, no failures.
    pub fn new(ticks: u64) -> Self {
        SimConfig { ticks, burst: None, failures: Vec::new() }
    }

    /// Adds a demand burst.
    pub fn with_burst(mut self, burst: Burst) -> Self {
        self.burst = Some(burst);
        self
    }

    /// Adds a replica outage.
    pub fn with_failure(mut self, failure: Failure) -> Self {
        self.failures.push(failure);
        self
    }
}

/// Runs the simulation of `solution` on `instance` for the configured number
/// of ticks and returns the aggregated report.
///
/// Requests follow the static assignment. When a replica is down or already
/// full in a tick (bursts can exceed the planned load), the affected requests
/// are offered to the client's other assigned replicas first and then to any
/// replica on the client's path within `dmax` that has spare capacity; what
/// remains is dropped.
pub fn simulate(instance: &Instance, solution: &Solution, config: &SimConfig) -> SimReport {
    let tree = instance.tree();
    let capacity = instance.capacity();
    let replicas = solution.replicas();

    // Static routing data.
    let mut fragments_by_client: BTreeMap<NodeId, Vec<(NodeId, Requests)>> = BTreeMap::new();
    for f in solution.fragments() {
        fragments_by_client.entry(f.client).or_default().push((f.server, f.amount));
    }
    // Fallback candidates per client: replicas on its path within dmax,
    // closest first (used only when re-routing).
    let mut fallback: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
    for &client in tree.clients() {
        let path = instance.eligible_servers(client);
        let candidates: Vec<NodeId> = path.into_iter().filter(|n| replicas.contains(n)).collect();
        fallback.insert(client, candidates);
    }

    let mut report = SimReport::prepare(instance, solution, config.ticks);

    for tick in 0..config.ticks {
        let factor = match config.burst {
            Some(b) if (b.from_tick..b.to_tick).contains(&tick) => b.factor,
            _ => 1.0,
        };
        let down =
            |server: NodeId| config.failures.iter().any(|f| f.server == server && f.is_down(tick));

        // Remaining capacity of each replica for this tick.
        let mut residual: BTreeMap<NodeId, Requests> = BTreeMap::new();
        for &r in &replicas {
            residual.insert(r, if down(r) { 0 } else { capacity });
        }

        for &client in tree.clients() {
            let base = tree.requests(client);
            if base == 0 {
                continue;
            }
            let issued = ((base as f64) * factor).round() as u64;
            report.issued += issued as u128;
            let mut remaining = issued;

            // Planned fragments, scaled by the burst factor.
            if let Some(frags) = fragments_by_client.get(&client) {
                for &(server, amount) in frags {
                    if remaining == 0 {
                        break;
                    }
                    let want = (((amount as f64) * factor).round() as u64).min(remaining);
                    let free = residual.get(&server).copied().unwrap_or(0);
                    let served = want.min(free);
                    if served > 0 {
                        *residual.get_mut(&server).unwrap() -= served;
                        remaining -= served;
                        let dist = tree
                            .distance_to_ancestor(client, server)
                            .expect("assigned servers are ancestors");
                        report.record_service(tree, client, server, served, dist);
                    }
                }
            }
            // Re-route what could not be served as planned (failure/burst).
            if remaining > 0 {
                if let Some(candidates) = fallback.get(&client) {
                    for &server in candidates {
                        if remaining == 0 {
                            break;
                        }
                        let free = residual.get(&server).copied().unwrap_or(0);
                        let served = remaining.min(free);
                        if served > 0 {
                            *residual.get_mut(&server).unwrap() -= served;
                            remaining -= served;
                            let dist = tree
                                .distance_to_ancestor(client, server)
                                .expect("fallback servers are ancestors");
                            report.record_reroute(tree, client, server, served, dist);
                        }
                    }
                }
            }
            report.dropped += remaining as u128;
        }
        report.finish_tick();
    }

    report.finalise(instance);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_tree::{validate, Policy, TreeBuilder};

    fn two_level() -> (Instance, Solution, NodeId, NodeId) {
        let mut b = TreeBuilder::new();
        let root = b.root();
        let n1 = b.add_internal(root, 1);
        let c1 = b.add_client(n1, 2, 6);
        let c2 = b.add_client(n1, 1, 4);
        let inst = Instance::new(b.freeze().unwrap(), 10, None).unwrap();
        let mut sol = Solution::new();
        sol.assign(c1, n1, 6);
        sol.assign(c2, root, 4);
        validate(&inst, Policy::Single, &sol).unwrap();
        (inst, sol, c1, c2)
    }

    #[test]
    fn conservation_without_disruption() {
        let (inst, sol, _, _) = two_level();
        let report = simulate(&inst, &sol, &SimConfig::new(50));
        assert_eq!(report.issued, 500);
        assert_eq!(report.served, 500);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.rerouted, 0);
    }

    #[test]
    fn utilisation_matches_static_plan() {
        let (inst, sol, _, _) = two_level();
        let report = simulate(&inst, &sol, &SimConfig::new(10));
        let n1_stats = report.replica(rp_tree::NodeId(1)).unwrap();
        assert!((n1_stats.mean_utilisation - 0.6).abs() < 1e-9);
        let root_stats = report.replica(rp_tree::NodeId(0)).unwrap();
        assert!((root_stats.mean_utilisation - 0.4).abs() < 1e-9);
    }

    #[test]
    fn latency_histogram_uses_tree_distances() {
        let (inst, sol, _, _) = two_level();
        let report = simulate(&inst, &sol, &SimConfig::new(1));
        // c1 served at distance 2, c2 at distance 2 (1 + 1).
        assert_eq!(report.latency_weighted_total, (6 * 2 + 4 * 2) as u128);
        assert!((report.mean_latency() - 2.0).abs() < 1e-9);
        assert_eq!(report.max_latency, 2);
    }

    #[test]
    fn failure_causes_reroute_or_drop() {
        let (inst, sol, _, _) = two_level();
        // n1 down for the whole run: c1's requests fall back to the root,
        // which has 10 - 4 = 6 spare → everything still served.
        let cfg = SimConfig::new(5).with_failure(Failure {
            server: rp_tree::NodeId(1),
            from_tick: 0,
            to_tick: 5,
        });
        let report = simulate(&inst, &sol, &cfg);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.rerouted, 30);
        // Root down instead: c2 falls back to n1, which has 10 - 6 = 4 spare
        // per tick → still no drops, 4 requests per tick re-routed.
        let cfg = SimConfig::new(5).with_failure(Failure {
            server: rp_tree::NodeId(0),
            from_tick: 0,
            to_tick: 5,
        });
        let report = simulate(&inst, &sol, &cfg);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.rerouted, 20);
        // Both replicas down: everything is dropped.
        let cfg = SimConfig::new(5)
            .with_failure(Failure { server: rp_tree::NodeId(0), from_tick: 0, to_tick: 5 })
            .with_failure(Failure { server: rp_tree::NodeId(1), from_tick: 0, to_tick: 5 });
        let report = simulate(&inst, &sol, &cfg);
        assert_eq!(report.dropped, 50);
        assert!(report.availability() < 1e-9);
    }

    #[test]
    fn burst_overload_drops_excess() {
        let (inst, sol, _, _) = two_level();
        // Double the demand: 20 requests per tick against 20 of capacity, but
        // c1 needs 12 on n1 (capacity 10) → 2 spill to the root; root has
        // 10 - 8 = 2 spare → exactly absorbed. No drops.
        let cfg = SimConfig::new(4).with_burst(Burst { from_tick: 0, to_tick: 4, factor: 2.0 });
        let report = simulate(&inst, &sol, &cfg);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.rerouted, 8);
        // Triple the demand: 30 per tick against 20 capacity → 10 dropped per tick.
        let cfg = SimConfig::new(4).with_burst(Burst { from_tick: 0, to_tick: 4, factor: 3.0 });
        let report = simulate(&inst, &sol, &cfg);
        assert_eq!(report.dropped, 40);
    }

    #[test]
    fn edge_traffic_accumulates_along_paths() {
        let (inst, sol, c1, c2) = two_level();
        let report = simulate(&inst, &sol, &SimConfig::new(1));
        // c1 → n1 uses edge (c1) only; c2 → root uses edges (c2) and (n1)?
        // No: c2 is attached to n1, so its path to the root crosses edge(c2)
        // and edge(n1).
        let e_c1 = report.edge(c1).unwrap();
        assert_eq!(e_c1.total, 6);
        let e_c2 = report.edge(c2).unwrap();
        assert_eq!(e_c2.total, 4);
        let e_n1 = report.edge(rp_tree::NodeId(1)).unwrap();
        assert_eq!(e_n1.total, 4);
    }

    #[test]
    fn zero_tick_simulation_is_empty() {
        let (inst, sol, _, _) = two_level();
        let report = simulate(&inst, &sol, &SimConfig::new(0));
        assert_eq!(report.issued, 0);
        assert_eq!(report.served, 0);
        assert_eq!(report.ticks, 0);
    }

    #[test]
    fn failure_outside_window_has_no_effect() {
        let (inst, sol, _, _) = two_level();
        let cfg = SimConfig::new(3).with_failure(Failure {
            server: rp_tree::NodeId(1),
            from_tick: 10,
            to_tick: 20,
        });
        let report = simulate(&inst, &sol, &cfg);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.rerouted, 0);
    }
}
