//! Aggregated results of a simulation run.

use rp_tree::{Dist, Instance, NodeId, Requests, Solution, Tree};
use std::collections::BTreeMap;

/// Per-replica statistics accumulated over a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaStats {
    /// The replica node.
    pub node: NodeId,
    /// Total requests it served over the whole run.
    pub total_served: u128,
    /// Largest number of requests served in a single tick.
    pub peak_load: Requests,
    /// Mean utilisation `served / (ticks · W)`.
    pub mean_utilisation: f64,
}

/// Traffic carried by the edge between a node and its parent.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeTraffic {
    /// Child endpoint of the edge (the edge towards its parent).
    pub child: NodeId,
    /// Total requests that crossed the edge over the run.
    pub total: u128,
    /// Mean requests per tick.
    pub mean_per_tick: f64,
}

/// Complete result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Number of simulated ticks.
    pub ticks: u64,
    /// Requests issued by clients over the run.
    pub issued: u128,
    /// Requests served (planned route or re-routed).
    pub served: u128,
    /// Requests served through a re-route (failure or overload spill).
    pub rerouted: u128,
    /// Requests dropped (no replica with spare capacity on the path).
    pub dropped: u128,
    /// Sum over served requests of their client→server distance.
    pub latency_weighted_total: u128,
    /// Largest client→server distance observed.
    pub max_latency: Dist,
    /// Requests served farther than `dmax` (possible only through re-routing,
    /// which prefers in-range replicas; normally 0).
    pub qos_violations: u128,
    replica_served: BTreeMap<NodeId, u128>,
    replica_tick_load: BTreeMap<NodeId, Requests>,
    replica_peak: BTreeMap<NodeId, Requests>,
    edge_total: BTreeMap<NodeId, u128>,
    replica_stats: Vec<ReplicaStats>,
    edge_stats: Vec<EdgeTraffic>,
    dmax: Option<Dist>,
}

impl SimReport {
    /// Creates an empty report for a run of `ticks` ticks.
    pub(crate) fn prepare(instance: &Instance, solution: &Solution, ticks: u64) -> Self {
        let mut replica_served = BTreeMap::new();
        let mut replica_peak = BTreeMap::new();
        let mut replica_tick_load = BTreeMap::new();
        for r in solution.replicas() {
            replica_served.insert(r, 0u128);
            replica_peak.insert(r, 0u64);
            replica_tick_load.insert(r, 0u64);
        }
        SimReport {
            ticks,
            issued: 0,
            served: 0,
            rerouted: 0,
            dropped: 0,
            latency_weighted_total: 0,
            max_latency: 0,
            qos_violations: 0,
            replica_served,
            replica_tick_load,
            replica_peak,
            edge_total: BTreeMap::new(),
            replica_stats: Vec::new(),
            edge_stats: Vec::new(),
            dmax: instance.dmax(),
        }
    }

    fn record(
        &mut self,
        tree: &Tree,
        client: NodeId,
        server: NodeId,
        amount: Requests,
        dist: Dist,
    ) {
        self.served += amount as u128;
        self.latency_weighted_total += amount as u128 * dist as u128;
        self.max_latency = self.max_latency.max(dist);
        if let Some(dmax) = self.dmax {
            if dist > dmax {
                self.qos_violations += amount as u128;
            }
        }
        *self.replica_served.entry(server).or_insert(0) += amount as u128;
        *self.replica_tick_load.entry(server).or_insert(0) += amount;
        // Edge traffic: every edge on the path from the client up to (but not
        // including) the server carries the requests.
        let mut current = client;
        while current != server {
            *self.edge_total.entry(current).or_insert(0) += amount as u128;
            current = tree.parent(current).expect("server is an ancestor of client");
        }
    }

    /// Records requests served through their planned fragment.
    pub(crate) fn record_service(
        &mut self,
        tree: &Tree,
        client: NodeId,
        server: NodeId,
        amount: Requests,
        dist: Dist,
    ) {
        self.record(tree, client, server, amount, dist);
    }

    /// Records requests served through a fallback replica.
    pub(crate) fn record_reroute(
        &mut self,
        tree: &Tree,
        client: NodeId,
        server: NodeId,
        amount: Requests,
        dist: Dist,
    ) {
        self.rerouted += amount as u128;
        self.record(tree, client, server, amount, dist);
    }

    /// Closes the current tick (updates per-replica peaks).
    pub(crate) fn finish_tick(&mut self) {
        for (node, load) in self.replica_tick_load.iter_mut() {
            let peak = self.replica_peak.entry(*node).or_insert(0);
            *peak = (*peak).max(*load);
            *load = 0;
        }
    }

    /// Computes the derived per-replica and per-edge statistics.
    pub(crate) fn finalise(&mut self, instance: &Instance) {
        let denom = (self.ticks as f64) * instance.capacity() as f64;
        self.replica_stats = self
            .replica_served
            .iter()
            .map(|(&node, &total_served)| ReplicaStats {
                node,
                total_served,
                peak_load: self.replica_peak.get(&node).copied().unwrap_or(0),
                mean_utilisation: if denom > 0.0 { total_served as f64 / denom } else { 0.0 },
            })
            .collect();
        self.edge_stats = self
            .edge_total
            .iter()
            .map(|(&child, &total)| EdgeTraffic {
                child,
                total,
                mean_per_tick: if self.ticks > 0 { total as f64 / self.ticks as f64 } else { 0.0 },
            })
            .collect();
    }

    /// Statistics of one replica, if it served anything or was placed.
    pub fn replica(&self, node: NodeId) -> Option<&ReplicaStats> {
        self.replica_stats.iter().find(|s| s.node == node)
    }

    /// All per-replica statistics, ordered by node id.
    pub fn replicas(&self) -> &[ReplicaStats] {
        &self.replica_stats
    }

    /// Traffic on the edge above `child`, if any request crossed it.
    pub fn edge(&self, child: NodeId) -> Option<&EdgeTraffic> {
        self.edge_stats.iter().find(|e| e.child == child)
    }

    /// All per-edge traffic records, ordered by child node id.
    pub fn edges(&self) -> &[EdgeTraffic] {
        &self.edge_stats
    }

    /// Mean client→server distance over all served requests.
    pub fn mean_latency(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.latency_weighted_total as f64 / self.served as f64
        }
    }

    /// Fraction of issued requests that were served.
    pub fn availability(&self) -> f64 {
        if self.issued == 0 {
            1.0
        } else {
            self.served as f64 / self.issued as f64
        }
    }

    /// Mean utilisation over all replicas.
    pub fn mean_utilisation(&self) -> f64 {
        if self.replica_stats.is_empty() {
            0.0
        } else {
            self.replica_stats.iter().map(|s| s.mean_utilisation).sum::<f64>()
                / self.replica_stats.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_tree::TreeBuilder;

    fn tiny() -> (Instance, Solution) {
        let mut b = TreeBuilder::new();
        let root = b.root();
        let c = b.add_client(root, 3, 5);
        let inst = Instance::new(b.freeze().unwrap(), 10, Some(5)).unwrap();
        let mut sol = Solution::new();
        sol.assign(c, root, 5);
        (inst, sol)
    }

    #[test]
    fn empty_report_defaults() {
        let (inst, sol) = tiny();
        let mut report = SimReport::prepare(&inst, &sol, 0);
        report.finalise(&inst);
        assert_eq!(report.mean_latency(), 0.0);
        assert_eq!(report.availability(), 1.0);
        assert_eq!(report.mean_utilisation(), 0.0);
        assert!(report.edges().is_empty());
    }

    #[test]
    fn record_accumulates_edges_and_latency() {
        let (inst, sol) = tiny();
        let tree = inst.tree().clone();
        let mut report = SimReport::prepare(&inst, &sol, 1);
        report.issued = 5;
        report.record_service(&tree, NodeId(1), NodeId(0), 5, 3);
        report.finish_tick();
        report.finalise(&inst);
        assert_eq!(report.served, 5);
        assert_eq!(report.edge(NodeId(1)).unwrap().total, 5);
        assert_eq!(report.replica(NodeId(0)).unwrap().peak_load, 5);
        assert!((report.mean_latency() - 3.0).abs() < 1e-9);
        assert_eq!(report.qos_violations, 0);
        assert_eq!(report.availability(), 1.0);
    }

    #[test]
    fn qos_violations_counted_beyond_dmax() {
        let (inst, sol) = tiny();
        let tree = inst.tree().clone();
        let mut report = SimReport::prepare(&inst, &sol, 1);
        report.record_reroute(&tree, NodeId(1), NodeId(0), 2, 9);
        report.finalise(&inst);
        assert_eq!(report.qos_violations, 2);
        assert_eq!(report.rerouted, 2);
        assert_eq!(report.max_latency, 9);
    }
}
