//! The NP-hardness machinery of the paper, end to end: build the reduction
//! gadgets `I2`, `I4` and `I6` from small partition instances and check with
//! the exact solvers that the replica-count threshold encodes the partition
//! answer (Theorems 1, 2 and 5).
//!
//! ```text
//! cargo run --example hardness_gadgets
//! ```

use replica_placement::algorithms::{single_gen, single_nod};
use replica_placement::instances::gadgets::{
    three_partition_gadget, two_partition_equal_gadget, two_partition_gadget,
};
use replica_placement::instances::partition::{
    solve_three_partition, solve_two_partition_equal, ThreePartitionInstance, TwoPartitionInstance,
};
use replica_placement::prelude::*;

fn main() {
    println!("== Theorem 1: 3-Partition → Single-NoD-Bin (gadget I2, Fig. 1) ==\n");
    let cases = [
        ThreePartitionInstance { items: vec![7, 8, 9, 9, 9, 6], bin: 24 }, // YES
        ThreePartitionInstance { items: vec![6, 6, 6, 6, 7, 9], bin: 20 }, // NO
    ];
    for source in &cases {
        let expected = solve_three_partition(source).is_some();
        let gadget = three_partition_gadget(&source.items, source.bin);
        let reachable = replica_placement::exact::feasible_within(
            &gadget.instance,
            Policy::Single,
            gadget.threshold,
        );
        println!(
            "items {:?} (B = {}): 3-partition {} ⇔ {} replicas reachable: {}  [{}]",
            source.items,
            source.bin,
            if expected { "YES" } else { "NO " },
            gadget.threshold,
            reachable,
            if expected == reachable { "agree" } else { "DISAGREE" },
        );
    }

    println!("\n== Theorem 2: the (3/2 − ε) inapproximability gadget I4 (Fig. 2) ==\n");
    let items = vec![9u64, 7, 8, 10, 6, 8];
    let gadget = two_partition_gadget(&items);
    let opt = replica_placement::exact::optimal_replica_count(&gadget.instance, Policy::Single)
        .expect("feasible");
    let gen = single_gen(&gadget.instance).unwrap().replica_count();
    let nod = single_nod(&gadget.instance).unwrap().replica_count();
    println!("items {items:?}, W = S/2 = {}", gadget.instance.capacity());
    println!("exact optimum: {opt} replicas (the two-partition placed on the root and n1)");
    println!("single-gen: {gen} replicas, single-nod: {nod} replicas");
    println!(
        "any algorithm guaranteed below 3/2·OPT would decide 2-Partition — here the greedy \
         algorithms give ratio ≥ {:.2}",
        gen.min(nod) as f64 / opt as f64
    );

    println!("\n== Theorem 5: 2-Partition-Equal → Multiple-Bin (gadget I6, Fig. 5) ==\n");
    let cases = [
        TwoPartitionInstance { items: vec![8, 9, 10, 9, 8, 10] }, // YES: {8,9,10} twice
        TwoPartitionInstance { items: vec![8, 8, 8, 10, 10, 10] }, // NO
    ];
    for source in &cases {
        let expected = solve_two_partition_equal(source).is_some();
        let (gadget, _) = two_partition_equal_gadget(&source.items);
        let reachable = replica_placement::exact::feasible_within(
            &gadget.instance,
            Policy::Multiple,
            gadget.threshold,
        );
        println!(
            "items {:?}: equal-cardinality 2-partition {} ⇔ {} replicas reachable: {}  [{}]",
            source.items,
            if expected { "YES" } else { "NO " },
            gadget.threshold,
            reachable,
            if expected == reachable { "agree" } else { "DISAGREE" },
        );
        println!(
            "  (gadget: {} nodes, W = {}, dmax = {:?}, one client with {}·W requests — the case \
             r_i > W that keeps Multiple-Bin NP-hard)",
            gadget.instance.tree().len(),
            gadget.instance.capacity(),
            gadget.instance.dmax(),
            2 * source.items.len() / 2 + 1,
        );
    }
}
