//! Video-on-Demand CDN scenario (the motivating application of the paper's
//! introduction): place replicas of a video catalogue over a hierarchical
//! distribution tree, then *run* the placement through the simulator —
//! steady state, a flash-crowd burst, and a replica outage.
//!
//! ```text
//! cargo run --example cdn_vod
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use replica_placement::algorithms::{multiple_bin, single_gen};
use replica_placement::instances::random::{random_binary_tree, wrap_instance};
use replica_placement::instances::{EdgeDist, RequestDist};
use replica_placement::prelude::*;
use replica_placement::sim::{simulate, Burst, Failure, SimConfig};

fn main() {
    // A 96-site access network: binary aggregation hierarchy, Zipf-ish
    // per-site demand (a few hot sites, a long tail), heterogeneous link
    // latencies. Capacity is provisioned for ~4 sites per streaming server,
    // and the service-level objective caps the client→server latency at 60%
    // of the network depth.
    let mut rng = StdRng::seed_from_u64(42);
    let tree = random_binary_tree(
        96,
        &EdgeDist::Uniform { lo: 1, hi: 5 },
        &RequestDist::Zipf { max: 200, exponent: 0.8 },
        &mut rng,
    );
    let instance = wrap_instance(tree, 4.0, Some(0.6));
    println!(
        "platform: {} nodes, {} client sites, {} req/s total, W = {}, dmax = {:?}",
        instance.tree().len(),
        instance.tree().client_count(),
        instance.tree().total_requests(),
        instance.capacity(),
        instance.dmax()
    );

    // Plan the placement under both access policies.
    let multiple = multiple_bin(&instance).expect("binary tree, r_i ≤ W");
    let multiple_stats = validate(&instance, Policy::Multiple, &multiple).expect("feasible");
    let single = single_gen(&instance).expect("feasible");
    let single_stats = validate(&instance, Policy::Single, &single).expect("feasible");
    println!(
        "placement: Multiple policy uses {} replicas (avg utilisation {:.0}%), Single policy uses {}",
        multiple_stats.replica_count,
        multiple_stats.avg_utilisation * 100.0,
        single_stats.replica_count,
    );

    // 1. Steady state: one hour at one tick per second.
    let report = simulate(&instance, &multiple, &SimConfig::new(3600));
    println!("\n-- steady state (3600 ticks) --");
    print_report_summary(&report);

    // 2. Flash crowd: demand doubles for ten minutes in the middle of the run.
    let burst_cfg =
        SimConfig::new(3600).with_burst(Burst { from_tick: 1200, to_tick: 1800, factor: 2.0 });
    let report = simulate(&instance, &multiple, &burst_cfg);
    println!("\n-- flash crowd (2x demand for 600 ticks) --");
    print_report_summary(&report);

    // 3. Outage: the most loaded replica goes down for fifteen minutes.
    let busiest = multiple
        .loads()
        .into_iter()
        .max_by_key(|(_, load)| *load)
        .map(|(node, _)| node)
        .expect("at least one replica");
    let outage_cfg = SimConfig::new(3600).with_failure(Failure {
        server: busiest,
        from_tick: 1000,
        to_tick: 1900,
    });
    let report = simulate(&instance, &multiple, &outage_cfg);
    println!("\n-- outage of the busiest replica ({busiest}) for 900 ticks --");
    print_report_summary(&report);
    println!(
        "requests re-routed to surviving replicas: {}, dropped: {}",
        report.rerouted, report.dropped
    );
}

fn print_report_summary(report: &replica_placement::sim::SimReport) {
    println!(
        "availability {:.4} | mean latency {:.2} | max latency {} | mean utilisation {:.0}% | QoS violations {}",
        report.availability(),
        report.mean_latency(),
        report.max_latency,
        report.mean_utilisation() * 100.0,
        report.qos_violations,
    );
}
