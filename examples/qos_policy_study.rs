//! QoS / provisioning study: how the number of replicas needed by the Single
//! and Multiple policies reacts as the distance (QoS) constraint tightens and
//! as the server capacity changes — the trade-off a capacity planner would
//! explore with this library.
//!
//! ```text
//! cargo run --example qos_policy_study
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use replica_placement::algorithms::{baselines, bounds, multiple_bin, single_gen};
use replica_placement::instances::random::{random_binary_tree, wrap_instance};
use replica_placement::instances::{EdgeDist, RequestDist};
use replica_placement::prelude::*;

fn main() {
    let clients = 160;
    let trials = 5;

    println!("Replica count vs QoS bound (dmax as a fraction of the network depth)");
    println!("clients = {clients}, capacity ≈ 3 sites per server, {trials} trials per point\n");
    println!(
        "{:>12} {:>12} {:>14} {:>14} {:>14} {:>14}",
        "dmax", "volume LB", "multiple-bin", "multiple-greedy", "single-gen", "clients-only"
    );
    for dmax_fraction in [None, Some(0.9), Some(0.7), Some(0.5), Some(0.35)] {
        let mut lb = 0.0;
        let mut multi = 0.0;
        let mut greedy = 0.0;
        let mut single = 0.0;
        let mut trivial = 0.0;
        for t in 0..trials {
            let inst = make_instance(clients, 3.0, dmax_fraction, t as u64);
            lb += bounds::volume_lower_bound(&inst) as f64;
            multi += replicas(&inst, Policy::Multiple, multiple_bin(&inst).unwrap());
            greedy += replicas(&inst, Policy::Multiple, baselines::multiple_greedy(&inst).unwrap());
            single += replicas(&inst, Policy::Single, single_gen(&inst).unwrap());
            trivial += replicas(&inst, Policy::Single, baselines::clients_only(&inst).unwrap());
        }
        let n = trials as f64;
        println!(
            "{:>12} {:>12.1} {:>14.1} {:>14.1} {:>14.1} {:>14.1}",
            label(dmax_fraction),
            lb / n,
            multi / n,
            greedy / n,
            single / n,
            trivial / n
        );
    }

    println!("\nReplica count vs server capacity (average client sites per server)");
    println!(
        "\n{:>12} {:>12} {:>14} {:>14} {:>16}",
        "sites/server", "volume LB", "multiple-bin", "single-gen", "utilisation"
    );
    for load in [1.5, 2.0, 3.0, 5.0, 8.0] {
        let mut lb = 0.0;
        let mut multi = 0.0;
        let mut single = 0.0;
        let mut util = 0.0;
        for t in 0..trials {
            let inst = make_instance(clients, load, Some(0.6), 100 + t as u64);
            lb += bounds::volume_lower_bound(&inst) as f64;
            let sol = multiple_bin(&inst).unwrap();
            let stats = validate(&inst, Policy::Multiple, &sol).unwrap();
            multi += stats.replica_count as f64;
            util += stats.avg_utilisation;
            single += replicas(&inst, Policy::Single, single_gen(&inst).unwrap());
        }
        let n = trials as f64;
        println!(
            "{:>12.1} {:>12.1} {:>14.1} {:>14.1} {:>15.0}%",
            load,
            lb / n,
            multi / n,
            single / n,
            util / n * 100.0
        );
    }
}

fn make_instance(clients: usize, load: f64, dmax_fraction: Option<f64>, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let tree = random_binary_tree(
        clients,
        &EdgeDist::Uniform { lo: 1, hi: 4 },
        &RequestDist::Uniform { lo: 1, hi: 12 },
        &mut rng,
    );
    wrap_instance(tree, load, dmax_fraction)
}

fn replicas(inst: &Instance, policy: Policy, sol: Solution) -> f64 {
    validate(inst, policy, &sol).expect("feasible").replica_count as f64
}

fn label(fraction: Option<f64>) -> String {
    fraction.map_or("none".into(), |f| format!("{:.0}%", f * 100.0))
}
