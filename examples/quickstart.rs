//! Quickstart: build a small distribution tree, run the three algorithms of
//! the paper, and compare them against the exact optimum.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use replica_placement::algorithms::{baselines, bounds, multiple_bin, single_gen, single_nod};
use replica_placement::prelude::*;

fn main() {
    // A small binary distribution tree: the root owns the original copy, two
    // regional nodes fan out to four edge sites, each serving two clients.
    //
    //                     root
    //                  1 /    \ 1
    //               west        east
    //             2 /  \ 2    1 /  \ 3
    //            e1     e2    e3    e4
    //           /\      /\    /\     /\
    //        (clients: 8,5  7,3   6,6  4,9 requests)
    let mut b = TreeBuilder::new();
    let root = b.root();
    let west = b.add_internal(root, 1);
    let east = b.add_internal(root, 1);
    let e1 = b.add_internal(west, 2);
    let e2 = b.add_internal(west, 2);
    let e3 = b.add_internal(east, 1);
    let e4 = b.add_internal(east, 3);
    for (edge_node, reqs) in [(e1, [8, 5]), (e2, [7, 3]), (e3, [6, 6]), (e4, [4, 9])] {
        for r in reqs {
            b.add_client(edge_node, 1, r);
        }
    }
    let tree = b.freeze().expect("valid tree");

    // Servers process at most W = 15 requests; a client must be served within
    // distance 4.
    let instance = Instance::new(tree, 15, Some(4)).expect("positive capacity");

    println!(
        "nodes: {}, clients: {}, total requests: {}",
        instance.tree().len(),
        instance.tree().client_count(),
        instance.tree().total_requests()
    );
    println!("capacity W = {}, dmax = {:?}", instance.capacity(), instance.dmax());
    println!("volume lower bound: {}", bounds::volume_lower_bound(&instance));
    println!("combined lower bound: {}", bounds::combined_lower_bound(&instance));
    println!();

    // Algorithm 1: (Δ+1)-approximation for the Single policy.
    let sol = single_gen(&instance).expect("every client fits in one server");
    let stats = validate(&instance, Policy::Single, &sol).expect("feasible");
    println!("single-gen   (Single):   {} replicas at {:?}", stats.replica_count, sol.replicas());

    // Algorithm 2: 2-approximation, no distance constraints (they are ignored).
    let nod_instance = Instance::new(instance.tree().clone(), instance.capacity(), None).unwrap();
    let sol = single_nod(&nod_instance).expect("feasible");
    let stats = validate(&nod_instance, Policy::Single, &sol).expect("feasible");
    println!(
        "single-nod   (Single, no dmax): {} replicas at {:?}",
        stats.replica_count,
        sol.replicas()
    );

    // Algorithm 3: optimal for the Multiple policy on binary trees.
    let sol = multiple_bin(&instance).expect("binary tree with r_i ≤ W");
    let stats = validate(&instance, Policy::Multiple, &sol).expect("feasible");
    println!("multiple-bin (Multiple): {} replicas at {:?}", stats.replica_count, sol.replicas());

    // Baseline and exact reference.
    let trivial = baselines::clients_only(&instance).expect("feasible");
    println!("clients-only baseline:   {} replicas", trivial.replica_count());
    let opt_single = replica_placement::exact::optimal_replica_count(&instance, Policy::Single)
        .expect("feasible");
    let opt_multiple = replica_placement::exact::optimal_replica_count(&instance, Policy::Multiple)
        .expect("feasible");
    println!();
    println!("exact optimum: Single = {opt_single}, Multiple = {opt_multiple}");
}
