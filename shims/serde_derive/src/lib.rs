//! Offline shim for `serde_derive`: the derives expand to nothing, which is
//! sound because nothing in this workspace serializes yet — the `#[derive]`
//! attributes on the model types only declare intent for downstream users.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
