//! Offline shim for [`parking_lot`](https://crates.io/crates/parking_lot): a `Mutex` with parking_lot's
//! non-poisoning API, backed by `std::sync::Mutex`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A mutex whose `lock` does not return a poison `Result`, like
/// `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }
}
