//! Offline shim for [`crossbeam`](https://crates.io/crates/crossbeam): just `thread::scope`, implemented on
//! `std::thread::scope` (stable since Rust 1.63).
//!
//! Behavioural difference kept small on purpose: on a child panic, crossbeam
//! returns `Err` from `scope` while std re-raises the panic. Workspace code
//! calls `.expect(...)` on the result, so both paths end in the same panic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped-thread API mirroring `crossbeam::thread`.
pub mod thread {
    /// A scope handle whose `spawn` closures receive the scope again, like
    /// `crossbeam::thread::Scope` (std's closures take no argument).
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread running `f`.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Creates a scope for spawning threads that may borrow from the caller.
    ///
    /// All spawned threads are joined before `scope` returns. Unlike
    /// crossbeam this propagates child panics instead of returning `Err`,
    /// so the `Ok` is unconditional.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_share_borrows() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }
}
