//! Offline shim for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! Provides the `Serialize`/`Deserialize` names in both the trait and macro
//! namespaces so `use serde::{Serialize, Deserialize}` + `#[derive(...)]`
//! compile. The derives are no-ops (see `serde_derive` shim); swap the path
//! dependency for the real crate to get actual serialization.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
