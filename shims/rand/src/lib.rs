//! Offline shim for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! Implements only the surface this workspace uses: [`Rng::gen_range`] over
//! integer and float ranges, [`SeedableRng::seed_from_u64`] and
//! [`rngs::StdRng`]. The generator is xoshiro256** seeded through SplitMix64,
//! which is deterministic across platforms — a feature for reproducible
//! tests, and entirely unsuitable for cryptography.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be created from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let offset = (rng.next_u64() as u128) % span;
                (self.start as u128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    // Full u128-width span cannot happen for <=64-bit types
                    // except u64/i64 full range; fall back to raw bits.
                    return rng.next_u64() as $t;
                }
                let offset = (rng.next_u64() as u128) % span;
                (start as u128).wrapping_add(offset) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing random sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator, stand-in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn works_through_dyn_like_generics() {
        fn take<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..10u64)
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(take(&mut rng) < 10);
    }
}
