//! The [`Strategy`] trait and the strategies for ranges, tuples and mapping.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for producing values of type [`Strategy::Value`].
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// simply samples a value from the deterministic per-case RNG.
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                ((self.start as u128) + (rng.next_u64() as u128) % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                ((start as u128).wrapping_add((rng.next_u64() as u128) % span)) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, G);
    (A, B, C, D, E, G, H);
    (A, B, C, D, E, G, H, I);
    (A, B, C, D, E, G, H, I, J);
    (A, B, C, D, E, G, H, I, J, K);
}
