//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length specification for [`vec()`]: a fixed size or a size range.
pub trait SizeRange {
    /// Samples a length.
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        Strategy::sample(self, rng)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        Strategy::sample(self, rng)
    }
}

/// Strategy for `Vec<S::Value>` with a sampled length (see [`vec()`]).
#[derive(Debug, Clone)]
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.sample_len(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy of vectors whose elements come from `element` and whose length
/// comes from `len`, like `proptest::collection::vec`.
pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}
