//! Test configuration and the deterministic per-case RNG.

pub use rand::rngs::StdRng as Inner;
use rand::{RngCore, SeedableRng};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs (default 256, like proptest).
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Resolves the case count: the `PROPTEST_CASES` environment variable
/// overrides the in-code configuration (same contract as real proptest),
/// which lets CI bound the runtime of every property suite at once.
pub fn resolve_cases(config: &ProptestConfig) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v
            .parse::<u32>()
            .unwrap_or_else(|_| panic!("PROPTEST_CASES must be a number, got `{v}`")),
        Err(_) => config.cases,
    }
}

/// Deterministic RNG handed to strategies: seeded from the fully-qualified
/// test name and the case index, so every test sees an independent,
/// reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng(Inner);

impl TestRng {
    /// RNG for case `case` of test `test_path`.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(Inner::seed_from_u64(h ^ ((case as u64) << 1 | 1)))
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
