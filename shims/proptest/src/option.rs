//! Option strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Option<S::Value>` (see [`of`]).
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    some: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Some with probability 3/4, None 1/4 — close enough to proptest's
        // weighted default, and it exercises both arms within a few cases.
        if rng.next_u64().is_multiple_of(4) {
            None
        } else {
            Some(self.some.sample(rng))
        }
    }
}

/// Strategy yielding `None` or `Some(value)` with `value` from `some`,
/// like `proptest::option::of`.
pub fn of<S: Strategy>(some: S) -> OptionStrategy<S> {
    OptionStrategy { some }
}
