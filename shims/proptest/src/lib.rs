//! Offline shim for the [`proptest`](https://crates.io/crates/proptest)
//! crate, covering the subset this workspace uses:
//!
//! * the [`proptest!`] macro (optionally with `#![proptest_config(...)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * [`arbitrary::any`] for the primitive integers and `bool`,
//! * integer and float range strategies (`0usize..30`, `0.4f64..1.0`, ...),
//! * tuple strategies, [`strategy::Strategy::prop_map`], [`collection::vec`],
//!   [`option::of`], [`strategy::Just`],
//! * [`test_runner::ProptestConfig::with_cases`] and the `PROPTEST_CASES`
//!   environment override.
//!
//! Differences from real proptest, by design: sampling is **deterministic**
//! (case `i` of a test always sees the same inputs, across runs and
//! machines) and failing inputs are **not shrunk** — the failing case index
//! and values are reported by the panic message instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// Prelude matching `proptest::prelude::*` for the surface we support.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace alias so `prop::collection::vec` / `prop::option::of` work.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Asserts a condition inside a `proptest!` body (panics on failure; this
/// shim has no shrinking so it is equivalent to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its strategies for `config.cases`
/// deterministic cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl!{ config = $config; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!{
            config = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( config = $config:expr;
      $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let cases = $crate::test_runner::resolve_cases(&config);
                for __case in 0..cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $( let $arg = $crate::strategy::Strategy::sample(&$strat, &mut __rng); )+
                    let __run = || -> () { $body };
                    __run();
                }
            }
        )*
    };
}
