//! `any::<T>()` for the primitive types the workspace samples.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Samples an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// Strategy yielding unconstrained values of `T` (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`, like `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
