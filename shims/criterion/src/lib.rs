//! Offline shim for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness. Provides the API subset the workspace benches use —
//! `Criterion`, benchmark groups, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `criterion_group!` / `criterion_main!` — with a
//! warm-up + per-sample timer instead of criterion's statistical machinery.
//! Output is one line per benchmark:
//! `group/id … median ns/iter (mean …, N samples)`.
//!
//! Beyond the plain-text lines the shim supports the machinery the
//! `bench-smoke` CI job consumes:
//!
//! * **quick mode** — `--quick` on the bench command line (i.e.
//!   `cargo bench -- --quick`) or `CRITERION_QUICK=1` shrinks warm-up,
//!   measurement window and sample count so a full bench run finishes in
//!   seconds;
//! * **env-configured sampling** — `CRITERION_SAMPLE_SIZE`,
//!   `CRITERION_WARM_UP_MS` and `CRITERION_MEASUREMENT_MS` override the
//!   in-code configuration (env wins, quick mode included), letting CI pin
//!   the cost of a bench job without patching bench sources;
//! * **JSON summary** — when `CRITERION_JSON` names a file, one JSON object
//!   per benchmark (`group`, `id`, `median_ns`, `mean_ns`, `samples`) is
//!   appended to it, and the same records are available in-process through
//!   [`measurements`] for benches that post-process their own timings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::io::Write as _;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { text: format!("{function_name}/{parameter}") }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { text: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(text: String) -> Self {
        BenchmarkId { text }
    }
}

/// One finished benchmark: its identity and timing summary.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Group name (`"criterion"` for stand-alone benchmarks).
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Median over the timed samples, in nanoseconds per iteration.
    pub median_ns: u128,
    /// Mean over the timed samples, in nanoseconds per iteration.
    pub mean_ns: u128,
    /// Number of timed samples.
    pub samples: usize,
}

fn registry() -> &'static Mutex<Vec<Measurement>> {
    static REGISTRY: OnceLock<Mutex<Vec<Measurement>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// All measurements recorded so far in this process, in execution order.
/// Benches that build structured reports (e.g. `BENCH_scaling.json`) read
/// their own timings back through this.
pub fn measurements() -> Vec<Measurement> {
    registry().lock().expect("measurement registry poisoned").clone()
}

fn record(m: Measurement) {
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            let line = format!(
                "{{\"group\":{:?},\"id\":{:?},\"median_ns\":{},\"mean_ns\":{},\"samples\":{}}}\n",
                m.group, m.id, m.median_ns, m.mean_ns, m.samples
            );
            let written = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| f.write_all(line.as_bytes()));
            if let Err(e) = written {
                eprintln!("criterion shim: cannot append to {path}: {e}");
            }
        }
    }
    registry().lock().expect("measurement registry poisoned").push(m);
}

/// Whether quick mode is active (`--quick` argument or `CRITERION_QUICK`).
pub fn quick_mode() -> bool {
    if std::env::args().any(|a| a == "--quick") {
        return true;
    }
    matches!(
        std::env::var("CRITERION_QUICK").ok().as_deref(),
        Some("1") | Some("true") | Some("yes")
    )
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.parse().ok()
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    config: &'a Config,
    group: String,
    id: String,
}

impl Bencher<'_> {
    /// Times `routine`: warms up for the configured duration (calibrating a
    /// batch size so fast routines are timed in ~100µs batches rather than
    /// one sample per call), then runs timed samples until both the sample
    /// count and the measurement window are satisfied, and reports their
    /// median and mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_start = Instant::now();
        let warm_end = warm_start + self.config.warm_up_time;
        let mut warm_iters: u64 = 0;
        while Instant::now() < warm_end {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        // With no warm-up iterations (e.g. CRITERION_WARM_UP_MS=0) there is
        // nothing to calibrate from: fall back to unbatched samples rather
        // than dividing a near-zero elapsed time into a huge batch.
        let batch = if warm_iters == 0 {
            1
        } else {
            let per_iter_ns = (warm_start.elapsed().as_nanos() / u128::from(warm_iters)).max(1);
            (100_000 / per_iter_ns).clamp(1, 1 << 20)
        };
        // Keep sample vectors bounded even when the routine is trivial.
        let max_samples = self.config.sample_size.max(5000);
        let mut samples: Vec<u128> = Vec::with_capacity(self.config.sample_size);
        let measure_start = Instant::now();
        let measure_end = measure_start + self.config.measurement_time;
        while samples.len() < self.config.sample_size
            || (Instant::now() < measure_end && samples.len() < max_samples)
        {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() / batch);
        }
        samples.sort_unstable();
        let n = samples.len().max(1);
        let median_ns = if samples.is_empty() {
            0
        } else if n % 2 == 1 {
            samples[n / 2]
        } else {
            (samples[n / 2 - 1] + samples[n / 2]) / 2
        };
        let mean_ns = samples.iter().sum::<u128>() / n as u128;
        println!(
            "bench: {}/{} ... {} ns/iter median ({} ns mean, {} samples)",
            self.group,
            self.id,
            median_ns,
            mean_ns,
            samples.len()
        );
        record(Measurement {
            group: self.group.clone(),
            id: self.id.clone(),
            median_ns,
            mean_ns,
            samples: samples.len(),
        });
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Config {
    /// Applies quick mode and the `CRITERION_*` env overrides (env wins
    /// over both the defaults and any in-code configuration).
    fn with_overrides(mut self) -> Self {
        if quick_mode() {
            // Keep at least 5 samples and a ~150ms window: slow routines
            // still finish fast, and the medians the CI perf gate compares
            // are not single-shot noise.
            self.sample_size = self.sample_size.min(5);
            self.warm_up_time = self.warm_up_time.min(Duration::from_millis(10));
            self.measurement_time = self.measurement_time.min(Duration::from_millis(150));
        }
        if let Some(n) = env_usize("CRITERION_SAMPLE_SIZE") {
            self.sample_size = n.max(1);
        }
        if let Some(ms) = env_usize("CRITERION_WARM_UP_MS") {
            self.warm_up_time = Duration::from_millis(ms as u64);
        }
        if let Some(ms) = env_usize("CRITERION_MEASUREMENT_MS") {
            self.measurement_time = Duration::from_millis(ms as u64);
        }
        self
    }
}

impl Default for Config {
    fn default() -> Self {
        // Much shorter than real criterion: the shim is a smoke-timer, and
        // CI builds every bench — keep a full `cargo bench` in seconds.
        Config {
            sample_size: 10,
            warm_up_time: Duration::from_millis(50),
            measurement_time: Duration::from_millis(200),
        }
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Sets the minimum number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    fn effective(&self) -> Config {
        self.config.clone().with_overrides()
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs a stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let config = self.effective();
        let mut bencher =
            Bencher { config: &config, group: "criterion".into(), id: id.to_string() };
        f(&mut bencher);
        self
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let config = self.criterion.effective();
        let mut bencher = Bencher { config: &config, group: self.name.clone(), id: id.to_string() };
        f(&mut bencher);
        self
    }

    /// Benchmarks `f` under `id` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let id = id.into();
        let config = self.criterion.effective();
        let mut bencher = Bencher { config: &config, group: self.name.clone(), id: id.to_string() };
        f(&mut bencher, input);
        self
    }

    /// Finishes the group (no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, in either criterion form:
/// `criterion_group!(name, target, ...)` or
/// `criterion_group! { name = n; config = expr; targets = t, ... }`.
#[macro_export]
macro_rules! criterion_group {
    ( name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)? ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ( $name:ident, $($target:path),+ $(,)? ) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the `main` function running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ( $($group:path),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurements_are_recorded_with_median_and_mean() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let all = measurements();
        let m = all.iter().rev().find(|m| m.id == "noop").expect("recorded");
        assert_eq!(m.group, "criterion");
        assert!(m.samples >= 5);
        assert!(m.median_ns <= m.mean_ns * 2 + 1, "median within sanity range");
    }

    #[test]
    fn config_env_overrides_apply() {
        // Quick mode shrinks, env pins. (Env vars are process-global, so
        // this test only checks the pure transformation.)
        let base = Config {
            sample_size: 100,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_millis(2000),
        };
        // No env set in tests: with_overrides is identity modulo quick mode.
        let eff = base.clone().with_overrides();
        assert!(eff.sample_size <= 100);
        assert!(eff.warm_up_time <= base.warm_up_time);
    }
}
