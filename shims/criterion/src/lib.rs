//! Offline shim for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness. Provides the API subset the workspace benches use —
//! `Criterion`, benchmark groups, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `criterion_group!` / `criterion_main!` — with a
//! straightforward warm-up + mean-of-N timer instead of criterion's
//! statistical machinery. Output is one line per benchmark:
//! `group/id … mean ns/iter (N iters)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { text: format!("{function_name}/{parameter}") }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { text: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(text: String) -> Self {
        BenchmarkId { text }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    config: &'a Config,
    group: String,
    id: String,
}

impl Bencher<'_> {
    /// Times `routine`: warms up for the configured duration, then runs
    /// `sample_size` timed iterations and reports their mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_end = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_end {
            std::hint::black_box(routine());
        }
        let mut iters = 0u64;
        let measure_start = Instant::now();
        let measure_end = measure_start + self.config.measurement_time;
        let min_iters = self.config.sample_size as u64;
        while Instant::now() < measure_end || iters < min_iters {
            std::hint::black_box(routine());
            iters += 1;
        }
        let elapsed = measure_start.elapsed();
        let mean_ns = elapsed.as_nanos() / iters.max(1) as u128;
        println!("bench: {}/{} ... {} ns/iter ({} iters)", self.group, self.id, mean_ns, iters);
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        // Much shorter than real criterion: the shim is a smoke-timer, and
        // CI builds every bench — keep a full `cargo bench` in seconds.
        Config {
            sample_size: 10,
            warm_up_time: Duration::from_millis(50),
            measurement_time: Duration::from_millis(200),
        }
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Sets the minimum number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs a stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut bencher =
            Bencher { config: &self.config, group: "criterion".into(), id: id.to_string() };
        f(&mut bencher);
        self
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut bencher = Bencher {
            config: &self.criterion.config,
            group: self.name.clone(),
            id: id.to_string(),
        };
        f(&mut bencher);
        self
    }

    /// Benchmarks `f` under `id` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            config: &self.criterion.config,
            group: self.name.clone(),
            id: id.to_string(),
        };
        f(&mut bencher, input);
        self
    }

    /// Finishes the group (no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, in either criterion form:
/// `criterion_group!(name, target, ...)` or
/// `criterion_group! { name = n; config = expr; targets = t, ... }`.
#[macro_export]
macro_rules! criterion_group {
    ( name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)? ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ( $name:ident, $($target:path),+ $(,)? ) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the `main` function running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ( $($group:path),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
        }
    };
}
