//! Cross-crate integration tests: generators → algorithms → validator →
//! exact solvers → text format → simulator, exercised together through the
//! facade crate exactly the way a downstream user would.

use rand::rngs::StdRng;
use rand::SeedableRng;
use replica_placement::algorithms::{baselines, bounds, Algorithm};
use replica_placement::instances::random::{random_binary_tree, random_kary_tree, wrap_instance};
use replica_placement::instances::worst_case::{single_gen_tight, single_nod_tight};
use replica_placement::instances::{EdgeDist, RequestDist};
use replica_placement::prelude::*;
use replica_placement::sim::{simulate, SimConfig};
use replica_placement::tree::io;

fn binary_instance(clients: usize, dmax: Option<f64>, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let tree = random_binary_tree(
        clients,
        &EdgeDist::Uniform { lo: 1, hi: 3 },
        &RequestDist::Uniform { lo: 1, hi: 9 },
        &mut rng,
    );
    wrap_instance(tree, 2.5, dmax)
}

#[test]
fn every_algorithm_produces_feasible_solutions_on_random_instances() {
    for seed in 0..6u64 {
        let inst = binary_instance(20, Some(0.7), seed);
        for algorithm in Algorithm::all() {
            let solution = replica_placement::algorithms::solve(&inst, algorithm)
                .unwrap_or_else(|e| panic!("{} failed: {e}", algorithm.name()));
            // single-nod ignores the distance constraint, so validate it on
            // the unconstrained twin of the instance.
            let check_inst = if algorithm == Algorithm::SingleNod {
                Instance::new(inst.tree().clone(), inst.capacity(), None).unwrap()
            } else {
                inst.clone()
            };
            let stats = validate(&check_inst, algorithm.policy(), &solution).unwrap_or_else(|e| {
                panic!("{} produced an invalid solution: {e}", algorithm.name())
            });
            assert!(stats.replica_count >= 1);
            assert!(
                stats.replica_count as u64 >= bounds::volume_lower_bound(&check_inst),
                "{} beat the volume lower bound",
                algorithm.name()
            );
        }
    }
}

#[test]
fn policy_hierarchy_multiple_beats_single_beats_trivial() {
    for seed in 0..6u64 {
        let inst = binary_instance(24, Some(0.8), seed + 100);
        let multiple = multiple_bin(&inst).unwrap().replica_count();
        let greedy = baselines::multiple_greedy(&inst).unwrap().replica_count();
        let single = single_gen(&inst).unwrap().replica_count();
        let trivial = baselines::clients_only(&inst).unwrap().replica_count();
        assert!(multiple <= greedy, "seed {seed}: multiple-bin {multiple} > greedy {greedy}");
        assert!(multiple <= single, "seed {seed}: multiple-bin {multiple} > single-gen {single}");
        assert!(single <= trivial, "seed {seed}: single-gen {single} > clients-only {trivial}");
    }
}

#[test]
fn approximation_guarantees_hold_against_exact_on_small_instances() {
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed + 500);
        let tree = random_kary_tree(
            7,
            3,
            &EdgeDist::Uniform { lo: 1, hi: 2 },
            &RequestDist::Uniform { lo: 1, hi: 9 },
            &mut rng,
        );
        let delta = tree.arity();
        let inst = wrap_instance(tree, 2.0, Some(0.7));
        let opt = replica_placement::exact::optimal_replica_count(&inst, Policy::Single).unwrap();

        let gen = single_gen(&inst).unwrap().replica_count() as u64;
        assert!(gen <= (delta as u64 + 1) * opt, "Theorem 3 violated: {gen} > (Δ+1)·{opt}");

        let nod_inst = Instance::new(inst.tree().clone(), inst.capacity(), None).unwrap();
        let nod = single_nod(&nod_inst).unwrap().replica_count() as u64;
        let nod_opt =
            replica_placement::exact::optimal_replica_count(&nod_inst, Policy::Single).unwrap();
        assert!(nod <= 2 * nod_opt, "Theorem 4 violated: {nod} > 2·{nod_opt}");
    }
}

#[test]
fn worst_case_families_reach_their_predicted_counts() {
    let t = single_gen_tight(4, 3);
    let sol = single_gen(&t.instance).unwrap();
    assert_eq!(sol.replica_count() as u64, t.predicted_algorithm_replicas);
    assert_eq!(
        validate(&t.instance, Policy::Single, &t.optimal_witness).unwrap().replica_count as u64,
        t.optimal_replicas
    );

    let t = single_nod_tight(6);
    let sol = single_nod(&t.instance).unwrap();
    assert_eq!(sol.replica_count() as u64, t.predicted_algorithm_replicas);
}

#[test]
fn text_format_roundtrip_preserves_solver_results() {
    let inst = binary_instance(16, Some(0.6), 7);
    let text = io::write_instance(&inst);
    let parsed = io::parse_instance(&text).expect("roundtrip parse");
    let original = multiple_bin(&inst).unwrap();
    let reparsed = multiple_bin(&parsed).unwrap();
    assert_eq!(original.replica_count(), reparsed.replica_count());

    let sol_text = io::write_solution(&original);
    let sol = io::parse_solution(&sol_text).expect("solution parse");
    assert!(validate(&parsed, Policy::Multiple, &sol).is_ok());
}

#[test]
fn planned_placements_survive_simulation_at_nominal_load() {
    for seed in 0..3u64 {
        let inst = binary_instance(32, Some(0.7), seed + 900);
        for solution in [multiple_bin(&inst).unwrap(), single_gen(&inst).unwrap()] {
            let report = simulate(&inst, &solution, &SimConfig::new(50));
            assert_eq!(report.dropped, 0, "a feasible placement must serve nominal load");
            assert_eq!(report.qos_violations, 0);
            assert!((report.availability() - 1.0).abs() < 1e-12);
            assert!(report.max_latency <= inst.dmax().unwrap());
        }
    }
}

#[test]
fn exact_solvers_agree_with_algorithm_ordering() {
    for seed in 0..4u64 {
        let inst = binary_instance(8, Some(0.8), seed + 42);
        let opt_single =
            replica_placement::exact::optimal_replica_count(&inst, Policy::Single).unwrap();
        let opt_multiple =
            replica_placement::exact::optimal_replica_count(&inst, Policy::Multiple).unwrap();
        assert!(opt_multiple <= opt_single);
        assert!(opt_multiple >= bounds::volume_lower_bound(&inst));
        let algo = multiple_bin(&inst).unwrap().replica_count() as u64;
        assert!(algo >= opt_multiple);
        assert!(algo <= opt_multiple + 1, "multiple-bin stays within one replica of the optimum");
    }
}
