//! Differential tests: the approximation algorithms of `rp-core` checked
//! mechanically against the independent exact solvers of `rp-exact`.
//!
//! Three instance sources feed one shared checker:
//!
//! 1. an **exhaustive enumeration** of every tree shape with up to 7 nodes
//!    (all parent vectors), crossed with a small grid of request patterns,
//!    capacities and distance bounds;
//! 2. **seeded random binary** instances (the `multiple-bin` input class);
//! 3. **seeded random k-ary** instances (arity 2–4).
//!
//! For every instance the checker asserts the paper's claims:
//!
//! * `multiple_bin` **equals** the exact Multiple optimum whenever the tree
//!   is binary and every client fits under the capacity (`r_i ≤ W`) —
//!   Theorem 6;
//! * `single_gen` stays within `(Δ+1)·OPT` of the exact Single optimum
//!   (`Δ·OPT` when there is no distance constraint) — Theorems 3/4;
//! * `single_nod` stays within `2·OPT` on the distance-free twin instance —
//!   the Single-NoD guarantee;
//! * every solution returned by *any* solver — approximation or exact —
//!   passes `rp_tree::validate`;
//! * the solvers agree on **feasibility**: Single is solvable iff every
//!   client fits under the capacity, and the algorithms' error returns match.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rp_core::{multiple_bin, single_gen, single_nod, SolveError};
use rp_instances::random::{random_binary_tree, random_kary_tree};
use rp_instances::{EdgeDist, RequestDist};
use rp_tree::{validate, Instance, Policy, Tree, TreeBuilder};

/// What the checker observed for one instance (used to assert coverage).
#[derive(Debug, Default, Clone, Copy)]
struct Tally {
    /// Instances on which at least one exact-vs-approximation comparison ran.
    compared: usize,
    /// Instances where `multiple_bin` was checked for exact optimality.
    multiple_exact: usize,
    /// Instances where `single_gen` was checked against the Single optimum.
    single_gen_vs_opt: usize,
    /// Instances where `single_nod` was checked against the NoD optimum.
    single_nod_vs_opt: usize,
}

impl Tally {
    fn absorb(&mut self, other: Tally) {
        self.compared += other.compared;
        self.multiple_exact += other.multiple_exact;
        self.single_gen_vs_opt += other.single_gen_vs_opt;
        self.single_nod_vs_opt += other.single_nod_vs_opt;
    }
}

/// Runs every solver on `inst` and cross-checks them. `label` makes failure
/// messages reproducible (it encodes the generator and its parameters).
fn check_instance(inst: &Instance, label: &str) -> Tally {
    let tree = inst.tree();
    let w = inst.capacity();
    let delta = tree.arity() as u64;
    let all_fit = tree.clients().iter().all(|&c| tree.requests(c) <= w);
    let mut tally = Tally::default();

    // --- Exact Single: feasible iff every client fits under W. ---
    let exact_single = rp_exact::optimal_solution(inst, Policy::Single);
    assert_eq!(
        exact_single.is_some(),
        all_fit,
        "[{label}] exact Single feasibility disagrees with the r_i <= W criterion"
    );
    let opt_single = exact_single.as_ref().map(|s| {
        let stats = validate(inst, Policy::Single, s)
            .unwrap_or_else(|e| panic!("[{label}] exact Single solution invalid: {e}"));
        stats.replica_count as u64
    });

    // --- single_gen: feasible iff all_fit; within (Δ+1)·OPT (Δ·OPT NoD). ---
    match single_gen(inst) {
        Ok(sol) => {
            assert!(all_fit, "[{label}] single_gen accepted an oversized client");
            let stats = validate(inst, Policy::Single, &sol)
                .unwrap_or_else(|e| panic!("[{label}] single_gen solution invalid: {e}"));
            let opt = opt_single.expect("feasibility agreed above");
            let factor = if inst.dmax().is_some() { delta + 1 } else { delta };
            assert!(
                stats.replica_count as u64 <= factor.max(1) * opt.max(1),
                "[{label}] single_gen used {} replicas, above {}x the optimum {}",
                stats.replica_count,
                factor.max(1),
                opt
            );
            if opt == 0 {
                assert_eq!(
                    stats.replica_count, 0,
                    "[{label}] single_gen placed replicas on a zero-request instance"
                );
            }
            tally.single_gen_vs_opt += 1;
            tally.compared += 1;
        }
        Err(SolveError::ClientExceedsCapacity { requests, capacity, .. }) => {
            assert!(!all_fit, "[{label}] single_gen rejected a feasible instance");
            assert!(requests > capacity, "[{label}] inconsistent error payload");
        }
        Err(e) => panic!("[{label}] unexpected single_gen error: {e}"),
    }

    // --- single_nod on the distance-free twin: within 2·OPT. ---
    let nod_inst = Instance::new(tree.clone(), w, None).expect("capacity unchanged");
    match single_nod(&nod_inst) {
        Ok(sol) => {
            assert!(all_fit, "[{label}] single_nod accepted an oversized client");
            let stats = validate(&nod_inst, Policy::Single, &sol)
                .unwrap_or_else(|e| panic!("[{label}] single_nod solution invalid: {e}"));
            let opt_nod = rp_exact::optimal_replica_count(&nod_inst, Policy::Single)
                .expect("all_fit implies Single-NoD feasibility");
            assert!(
                stats.replica_count as u64 <= 2 * opt_nod.max(1),
                "[{label}] single_nod used {} replicas, above 2x the optimum {}",
                stats.replica_count,
                opt_nod
            );
            tally.single_nod_vs_opt += 1;
            tally.compared += 1;
        }
        Err(SolveError::ClientExceedsCapacity { .. }) => {
            assert!(!all_fit, "[{label}] single_nod rejected a feasible instance");
        }
        Err(e) => panic!("[{label}] unexpected single_nod error: {e}"),
    }

    // --- multiple_bin vs exact Multiple: equality on its optimality domain. ---
    let exact_multiple = rp_exact::optimal_solution(inst, Policy::Multiple);
    if let Some(s) = &exact_multiple {
        validate(inst, Policy::Multiple, s)
            .unwrap_or_else(|e| panic!("[{label}] exact Multiple solution invalid: {e}"));
    }
    if all_fit {
        assert!(
            exact_multiple.is_some(),
            "[{label}] exact Multiple infeasible although every client fits locally"
        );
    }
    match multiple_bin(inst) {
        Ok(sol) => {
            assert!(tree.arity() <= 2, "[{label}] multiple_bin accepted a non-binary tree");
            let stats = validate(inst, Policy::Multiple, &sol)
                .unwrap_or_else(|e| panic!("[{label}] multiple_bin solution invalid: {e}"));
            if all_fit {
                let opt = exact_multiple
                    .as_ref()
                    .map(|s| s.replica_count() as u64)
                    .expect("asserted feasible above");
                assert_eq!(
                    stats.replica_count as u64, opt,
                    "[{label}] multiple_bin is not optimal: {} vs exact {}",
                    stats.replica_count, opt
                );
                tally.multiple_exact += 1;
                tally.compared += 1;
            }
        }
        Err(SolveError::NotBinary { arity }) => {
            assert!(arity > 2, "[{label}] NotBinary error for arity {arity}");
            assert!(tree.arity() > 2, "[{label}] spurious NotBinary error");
        }
        Err(SolveError::ClientExceedsCapacity { .. }) => {
            assert!(!all_fit, "[{label}] multiple_bin rejected a feasible Bin instance");
        }
        Err(e) => panic!("[{label}] unexpected multiple_bin error: {e}"),
    }

    tally
}

// ---------------------------------------------------------------------------
// Source 1: exhaustive enumeration of small trees.
// ---------------------------------------------------------------------------

/// All parent vectors of a rooted tree on `n` labelled nodes: entry `i - 1`
/// is the parent of node `i`, an arbitrary earlier node. Nodes that end up
/// childless become clients; the rest are internal.
fn enumerate_parent_vectors(n: usize) -> Vec<Vec<usize>> {
    assert!(n >= 2);
    let mut out: Vec<Vec<usize>> = vec![vec![0]];
    for i in 2..n {
        let mut next = Vec::new();
        for prefix in &out {
            for parent in 0..=i - 1 {
                let mut v = prefix.clone();
                v.push(parent);
                next.push(v);
            }
        }
        out = next;
    }
    out
}

/// Builds the tree for one parent vector, cycling `edges` and `requests`
/// patterns over the created nodes.
fn build_tree(parents: &[usize], edges: &[u64], requests: &[u64]) -> Tree {
    let n = parents.len() + 1;
    let mut has_children = vec![false; n];
    for &p in parents {
        has_children[p] = true;
    }
    let mut b = TreeBuilder::new();
    let mut ids = vec![b.root()];
    let mut client_idx = 0usize;
    for (i, &p) in parents.iter().enumerate() {
        let edge = edges[i % edges.len()];
        let id = if has_children[i + 1] {
            b.add_internal(ids[p], edge)
        } else {
            let r = requests[client_idx % requests.len()];
            client_idx += 1;
            b.add_client(ids[p], edge, r)
        };
        ids.push(id);
    }
    b.freeze().expect("parent vectors always describe valid trees")
}

#[test]
fn differential_exhaustive_small_trees() {
    let request_patterns: [&[u64]; 3] = [&[1, 2, 3], &[2, 7, 4], &[0, 5, 1]];
    let capacities = [5u64, 12];
    let dmaxes = [None, Some(3u64)];
    let edge_pattern = [1u64, 2];

    let mut tally = Tally::default();
    let mut instances = 0usize;
    for n in 2..=6 {
        for parents in enumerate_parent_vectors(n) {
            for (ri, requests) in request_patterns.iter().enumerate() {
                let tree = build_tree(&parents, &edge_pattern, requests);
                for &w in &capacities {
                    for &dmax in &dmaxes {
                        let inst = Instance::new(tree.clone(), w, dmax).expect("positive capacity");
                        let label = format!(
                            "exhaustive n={n} parents={parents:?} req#{ri} W={w} dmax={dmax:?}"
                        );
                        tally.absorb(check_instance(&inst, &label));
                        instances += 1;
                    }
                }
            }
        }
    }
    // 7-node shapes once more with a single default grid (720 extra shapes).
    for parents in enumerate_parent_vectors(7) {
        let tree = build_tree(&parents, &edge_pattern, &[1, 4, 2]);
        let inst = Instance::new(tree, 6, Some(4)).expect("positive capacity");
        let label = format!("exhaustive n=7 parents={parents:?}");
        tally.absorb(check_instance(&inst, &label));
        instances += 1;
    }

    // The acceptance bar for the whole suite is 200 compared instances;
    // the exhaustive source alone must clear it with a wide margin.
    assert!(instances >= 1000, "expected >= 1000 enumerated instances, got {instances}");
    assert!(tally.compared >= 200, "only {} compared instances", tally.compared);
    assert!(
        tally.multiple_exact >= 100,
        "only {} multiple_bin optimality checks",
        tally.multiple_exact
    );
    assert!(tally.single_gen_vs_opt >= 200);
    assert!(tally.single_nod_vs_opt >= 200);
}

// ---------------------------------------------------------------------------
// Sources 2 and 3: seeded random binary / k-ary instances.
// ---------------------------------------------------------------------------

#[test]
fn differential_random_binary_instances() {
    let edge = EdgeDist::Uniform { lo: 1, hi: 3 };
    let requests = RequestDist::Uniform { lo: 0, hi: 11 };
    let mut tally = Tally::default();
    for clients in 2..=9usize {
        for seed in 0..9u64 {
            let mut rng = StdRng::seed_from_u64(0xD1FF ^ (seed << 8) ^ clients as u64);
            let tree = random_binary_tree(clients, &edge, &requests, &mut rng);
            // Capacities straddling the max request exercise both the
            // optimality domain (r_i <= W) and the rejection paths.
            for w in [6u64, 11, 25] {
                for dmax in [None, Some(4u64), Some(9)] {
                    let inst = Instance::new(tree.clone(), w, dmax).expect("capacity > 0");
                    let label =
                        format!("random-binary clients={clients} seed={seed} W={w} dmax={dmax:?}");
                    tally.absorb(check_instance(&inst, &label));
                }
            }
        }
    }
    // A few larger instances (capacity high enough to keep the exact
    // oracle fast) exercise the stage re-routing path of `multiple_bin`.
    for clients in [10usize, 11, 12] {
        for seed in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(0xB16 ^ (seed << 4) ^ clients as u64);
            let tree = random_binary_tree(clients, &edge, &requests, &mut rng);
            for dmax in [None, Some(9u64), Some(13)] {
                let inst = Instance::new(tree.clone(), 25, dmax).expect("capacity > 0");
                let label =
                    format!("random-binary-large clients={clients} seed={seed} dmax={dmax:?}");
                tally.absorb(check_instance(&inst, &label));
            }
        }
    }
    assert!(tally.compared >= 200, "only {} compared instances", tally.compared);
    assert!(
        tally.multiple_exact >= 50,
        "only {} multiple_bin optimality checks",
        tally.multiple_exact
    );
}

#[test]
fn differential_random_kary_instances() {
    let edge = EdgeDist::Uniform { lo: 1, hi: 2 };
    let requests = RequestDist::Uniform { lo: 1, hi: 9 };
    let mut tally = Tally::default();
    for clients in 2..=7usize {
        for arity in 2..=4usize {
            for seed in 0..6u64 {
                let mut rng =
                    StdRng::seed_from_u64(0xCA21 ^ (seed << 16) ^ ((clients * 10 + arity) as u64));
                let tree = random_kary_tree(clients, arity, &edge, &requests, &mut rng);
                for w in [7u64, 18] {
                    for dmax in [None, Some(5u64)] {
                        let inst = Instance::new(tree.clone(), w, dmax).expect("capacity > 0");
                        let label = format!(
                            "random-kary clients={clients} arity={arity} seed={seed} W={w} dmax={dmax:?}"
                        );
                        tally.absorb(check_instance(&inst, &label));
                    }
                }
            }
        }
    }
    assert!(tally.compared >= 200, "only {} compared instances", tally.compared);
    assert!(tally.single_gen_vs_opt >= 200);
}
