//! The tight worst-case families of the paper (Fig. 3 / Fig. 4) must
//! *actually* drive the algorithms to their advertised approximation ratios:
//! the constructions are only evidence of tightness if `single_gen` really
//! places `m(Δ+1)` replicas on `Im` and `single_nod` really places `2K`
//! replicas on the Fig. 4 family, while the claimed optima stay achievable.

use replica_placement::exact;
use replica_placement::instances::worst_case::{single_gen_tight, single_nod_tight};
use replica_placement::prelude::*;

#[test]
fn single_gen_tight_reaches_its_predicted_ratio() {
    for (m, delta) in [(1usize, 2usize), (1, 3), (2, 2), (2, 4), (3, 3), (4, 2), (5, 5)] {
        let t = single_gen_tight(m, delta);
        let sol = single_gen(&t.instance).expect("Im is feasible by construction");
        let stats = validate(&t.instance, Policy::Single, &sol).expect("must be feasible");
        assert_eq!(
            stats.replica_count as u64, t.predicted_algorithm_replicas,
            "single_gen on Im(m={m}, delta={delta}) did not hit the predicted worst case"
        );
        // The claimed optimum is achievable (witness) ...
        let wstats = validate(&t.instance, Policy::Single, &t.optimal_witness).unwrap();
        assert_eq!(wstats.replica_count as u64, t.optimal_replicas);
        // ... so the measured ratio matches the closed form exactly.
        let measured = stats.replica_count as f64 / wstats.replica_count as f64;
        assert!(
            (measured - t.predicted_ratio()).abs() < 1e-9,
            "measured ratio {measured} != predicted {}",
            t.predicted_ratio()
        );
        // The ratio approaches Δ+1 from below as m grows.
        assert!(measured < (delta + 1) as f64);
        assert!(measured > (delta + 1) as f64 * m as f64 / (m as f64 + 1.0) - 1e-9);
    }
    // For large m the ratio is within 2% of the Δ+1 bound — the family is
    // asymptotically tight, not just bad.
    let t = single_gen_tight(60, 3);
    assert!(t.predicted_ratio() > 4.0 * 0.98);
}

#[test]
fn single_gen_tight_optimum_confirmed_by_exact_solver() {
    // Where the exact solver is affordable, the "analytically known" optimum
    // must be the true optimum, not merely an upper bound.
    for (m, delta) in [(1usize, 2usize), (1, 3), (2, 2)] {
        let t = single_gen_tight(m, delta);
        let opt =
            exact::optimal_replica_count(&t.instance, Policy::Single).expect("Im is feasible");
        assert_eq!(
            opt, t.optimal_replicas,
            "paper's claimed optimum is wrong on Im(m={m}, delta={delta})"
        );
    }
}

#[test]
fn single_nod_tight_reaches_its_predicted_ratio() {
    for k in [1usize, 2, 3, 5, 8, 13, 21] {
        let t = single_nod_tight(k);
        let sol = single_nod(&t.instance).expect("Fig. 4 family is feasible");
        let stats = validate(&t.instance, Policy::Single, &sol).expect("must be feasible");
        assert_eq!(
            stats.replica_count as u64, t.predicted_algorithm_replicas,
            "single_nod on Fig.4(k={k}) did not hit the predicted worst case"
        );
        let wstats = validate(&t.instance, Policy::Single, &t.optimal_witness).unwrap();
        assert_eq!(wstats.replica_count as u64, t.optimal_replicas);
        let measured = stats.replica_count as f64 / wstats.replica_count as f64;
        assert!((measured - t.predicted_ratio()).abs() < 1e-9);
        // Ratio 2k/(k+1) approaches 2 from below.
        assert!(measured < 2.0);
        assert!(measured >= 2.0 * k as f64 / (k as f64 + 1.0) - 1e-9);
    }
    assert!(single_nod_tight(99).predicted_ratio() > 2.0 * 0.98);
}

#[test]
fn single_nod_tight_optimum_confirmed_by_exact_solver() {
    for k in [1usize, 2, 3, 4] {
        let t = single_nod_tight(k);
        let opt = exact::optimal_replica_count(&t.instance, Policy::Single)
            .expect("Fig. 4 family is feasible");
        assert_eq!(opt, t.optimal_replicas, "paper's claimed optimum is wrong for k={k}");
    }
}
