//! Property-based tests over randomly generated instances (proptest drives
//! the generator parameters and seeds; the instances themselves come from
//! `rp-instances`, exactly like in the experiments).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use replica_placement::algorithms::{baselines, bounds};
use replica_placement::instances::random::{random_binary_tree, random_kary_tree, wrap_instance};
use replica_placement::instances::worst_case::{single_gen_tight, single_nod_tight};
use replica_placement::instances::{EdgeDist, RequestDist};
use replica_placement::prelude::*;
use replica_placement::tree::io;

fn binary_instance(clients: usize, dmax: Option<f64>, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let tree = random_binary_tree(
        clients,
        &EdgeDist::Uniform { lo: 1, hi: 4 },
        &RequestDist::Uniform { lo: 1, hi: 12 },
        &mut rng,
    );
    wrap_instance(tree, 2.5, dmax)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every algorithm's output is feasible and respects the volume bound,
    /// on arbitrary binary instances with arbitrary distance constraints.
    #[test]
    fn algorithms_always_produce_feasible_solutions(
        clients in 2usize..40,
        seed in any::<u64>(),
        dmax_fraction in prop::option::of(0.3f64..1.0),
    ) {
        let inst = binary_instance(clients, dmax_fraction, seed);
        let lb = bounds::volume_lower_bound(&inst);

        let sol = single_gen(&inst).unwrap();
        let stats = validate(&inst, Policy::Single, &sol).unwrap();
        prop_assert!(stats.replica_count as u64 >= lb);

        let sol = multiple_bin(&inst).unwrap();
        let stats = validate(&inst, Policy::Multiple, &sol).unwrap();
        prop_assert!(stats.replica_count as u64 >= lb);

        let sol = baselines::multiple_greedy(&inst).unwrap();
        let stats = validate(&inst, Policy::Multiple, &sol).unwrap();
        prop_assert!(stats.replica_count as u64 >= lb);

        // single-nod ignores dmax; validate on the unconstrained twin.
        let nod_inst = Instance::new(inst.tree().clone(), inst.capacity(), None).unwrap();
        let sol = single_nod(&nod_inst).unwrap();
        validate(&nod_inst, Policy::Single, &sol).unwrap();
    }

    /// The Multiple policy never needs more replicas than the Single policy,
    /// and the lower bounds never exceed any feasible solution.
    #[test]
    fn policy_and_bound_ordering(
        clients in 2usize..32,
        seed in any::<u64>(),
        dmax_fraction in prop::option::of(0.4f64..1.0),
    ) {
        let inst = binary_instance(clients, dmax_fraction, seed);
        let multiple = multiple_bin(&inst).unwrap().replica_count() as u64;
        let single = single_gen(&inst).unwrap().replica_count() as u64;
        let trivial = baselines::clients_only(&inst).unwrap().replica_count() as u64;
        let lb = bounds::combined_lower_bound(&inst);
        prop_assert!(multiple <= single);
        prop_assert!(single <= trivial);
        prop_assert!(lb <= multiple);
    }

    /// Instances survive a round trip through the text format with identical
    /// structure and identical solver behaviour.
    #[test]
    fn text_format_roundtrip(
        clients in 2usize..30,
        arity in 2usize..5,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = random_kary_tree(
            clients,
            arity,
            &EdgeDist::Uniform { lo: 1, hi: 5 },
            &RequestDist::Uniform { lo: 0, hi: 10 },
            &mut rng,
        );
        let inst = wrap_instance(tree, 3.0, Some(0.8));
        let parsed = io::parse_instance(&io::write_instance(&inst)).unwrap();
        prop_assert_eq!(parsed.tree().len(), inst.tree().len());
        prop_assert_eq!(parsed.capacity(), inst.capacity());
        prop_assert_eq!(parsed.dmax(), inst.dmax());
        for id in inst.tree().node_ids() {
            prop_assert_eq!(parsed.tree().parent(id), inst.tree().parent(id));
            prop_assert_eq!(parsed.tree().edge(id), inst.tree().edge(id));
            prop_assert_eq!(parsed.tree().requests(id), inst.tree().requests(id));
        }
        let a = single_gen(&inst).unwrap().replica_count();
        let b = single_gen(&parsed).unwrap().replica_count();
        prop_assert_eq!(a, b);
    }

    /// The worst-case families match their closed-form predictions for every
    /// parameter choice, not just the ones hard-coded in unit tests.
    #[test]
    fn tight_families_match_closed_forms(m in 1usize..10, delta in 2usize..6, k in 1usize..24) {
        let t = single_gen_tight(m, delta);
        let sol = single_gen(&t.instance).unwrap();
        prop_assert_eq!(sol.replica_count() as u64, (m as u64) * (delta as u64 + 1));
        let stats = validate(&t.instance, Policy::Single, &t.optimal_witness).unwrap();
        prop_assert_eq!(stats.replica_count as u64, m as u64 + 1);

        let t = single_nod_tight(k);
        let sol = single_nod(&t.instance).unwrap();
        prop_assert_eq!(sol.replica_count() as u64, 2 * k as u64);
    }

    /// Simulating a validated placement at nominal load never drops requests
    /// and never violates the distance bound.
    #[test]
    fn simulation_conserves_requests(clients in 2usize..24, seed in any::<u64>()) {
        let inst = binary_instance(clients, Some(0.7), seed);
        let sol = multiple_bin(&inst).unwrap();
        validate(&inst, Policy::Multiple, &sol).unwrap();
        let report = replica_placement::sim::simulate(&inst, &sol, &replica_placement::sim::SimConfig::new(20));
        prop_assert_eq!(report.dropped, 0);
        prop_assert_eq!(report.served, report.issued);
        prop_assert_eq!(report.qos_violations, 0);
    }
}
